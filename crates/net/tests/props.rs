//! Property-based tests for clustering and routing invariants.

use vc_net::cluster::{form_clusters, ClusterConfig};
use vc_net::message::{Packet, PacketId};
use vc_net::netsim::NetSim;
use vc_net::routing::{ClusterRouting, Epidemic, GreedyGeo, MozoRouting, RoutingProtocol};
use vc_net::world::WorldView;
use vc_obs::{SampleRate, Sampler};
use vc_sim::geom::Point;
use vc_sim::node::VehicleId;
use vc_sim::radio::NeighborTable;
use vc_sim::rng::SimRng;
use vc_sim::time::SimTime;
use vc_testkit::prop::strategy::{any_u16, any_u32, any_u64, from_fn, FromFn};
use vc_testkit::{prop, prop_assert, prop_assert_eq, prop_assert_ne};

#[derive(Debug, Clone)]
struct World {
    positions: Vec<Point>,
    velocities: Vec<Point>,
    online: Vec<bool>,
}

fn gen_world(rng: &mut SimRng, n: usize) -> World {
    let positions = (0..n)
        .map(|_| Point::new(rng.range_f64(-1000.0, 1000.0), rng.range_f64(-1000.0, 1000.0)))
        .collect();
    let velocities = (0..n)
        .map(|_| Point::new(rng.range_f64(-30.0, 30.0), rng.range_f64(-30.0, 30.0)))
        .collect();
    // Ensure at least vehicle 0 is online so protocols have a holder.
    let mut online: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
    online[0] = true;
    World { positions, velocities, online }
}

fn world_strategy(max_n: usize) -> FromFn<impl Fn(&mut SimRng) -> World> {
    from_fn(move |rng| {
        let n = rng.range_u64(2, max_n as u64) as usize;
        gen_world(rng, n)
    })
}

/// Two independently generated worlds of the same (random) size — the
/// before/after pair the maintenance invariants check.
fn world_pair() -> FromFn<impl Fn(&mut SimRng) -> (World, World)> {
    from_fn(|rng| {
        let n = rng.range_u64(2, 24) as usize;
        (gen_world(rng, n), gen_world(rng, n))
    })
}

/// Fingerprint of a full instrumented sharded run: statistics (latencies as
/// raw bits), the serialized event stream, and the end-state fleet
/// kinematics. Equal fingerprints mean bitwise-equal runs.
type RunFingerprint = (u64, u64, u64, Vec<u32>, Vec<u64>, Vec<u8>, Vec<(u64, u64)>);

fn sharded_run_fingerprint<P: RoutingProtocol>(
    seed: u64,
    vehicles: usize,
    packets: usize,
    rounds: usize,
    shard_count: usize,
    protocol: P,
) -> RunFingerprint {
    traced_run_fingerprint(seed, vehicles, packets, rounds, shard_count, protocol, SampleRate::OFF)
}

/// [`sharded_run_fingerprint`] with causal tracing at an explicit sample
/// rate (the sampler is seeded from the run seed, like the default).
#[allow(clippy::too_many_arguments)]
fn traced_run_fingerprint<P: RoutingProtocol>(
    seed: u64,
    vehicles: usize,
    packets: usize,
    rounds: usize,
    shard_count: usize,
    protocol: P,
    rate: SampleRate,
) -> RunFingerprint {
    let mut b = vc_sim::scenario::ScenarioBuilder::new();
    b.seed(seed).vehicles(vehicles);
    let mut scenario = b.urban_with_rsus();
    scenario.shards = shard_count;
    let mut rec = vc_obs::Recorder::new();
    let (stats, events) = {
        let mut sim = NetSim::new(&mut scenario, protocol);
        sim.set_sampler(Sampler::new(seed, rate));
        sim.send_random_pairs_obs(packets, 128, Some(&mut rec));
        sim.run_rounds_obs(rounds, Some(&mut rec));
        let stats = sim.into_stats();
        let mut events = Vec::new();
        rec.write_jsonl(&mut events).expect("serialize events");
        (stats, events)
    };
    let lat_bits: Vec<u64> = stats.latencies_s.iter().map(|l| l.to_bits()).collect();
    let pos_bits: Vec<(u64, u64)> =
        scenario.fleet.positions().iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
    (stats.sent, stats.delivered, stats.transmissions, stats.hops, lat_bits, events, pos_bits)
}

prop! {
    #![cases(64)]

    // The CSR NeighborTable must equal the old nested-Vec build: per vehicle
    // a sorted list of the online others strictly within range, empty for
    // offline vehicles. Both the fresh build and an in-place rebuild over a
    // dirty grid/table are checked against a brute-force reference.
    #[test]
    fn neighbor_table_matches_naive_reference(w in world_strategy(40)) {
        let range = 300.0;
        let table = NeighborTable::build(&w.positions, &w.online, range);
        let mut reused = NeighborTable::new();
        // Deliberately mismatched cell size and pre-polluted buckets: the
        // result may not depend on either.
        let mut grid = vc_sim::geom::SpatialGrid::new(145.0);
        grid.insert(9999, Point::new(0.0, 0.0));
        reused.rebuild(&mut grid, &w.positions, &w.online, range);
        let n = w.positions.len();
        prop_assert_eq!(table.len(), n);
        prop_assert_eq!(reused.len(), n);
        for i in 0..n {
            let id = VehicleId(i as u32);
            let mut expect: Vec<VehicleId> = Vec::new();
            if w.online[i] {
                for j in 0..n {
                    if j != i
                        && w.online[j]
                        && w.positions[j].distance_sq(w.positions[i]) < range * range
                    {
                        expect.push(VehicleId(j as u32));
                    }
                }
            }
            prop_assert_eq!(table.of(id), expect.as_slice());
            prop_assert_eq!(reused.of(id), expect.as_slice());
        }
    }

    // Clustering invariants: every online vehicle gets a head; heads head
    // themselves; members lists are consistent; offline vehicles excluded.
    #[test]
    fn clustering_invariants(w in world_strategy(40)) {
        let table = NeighborTable::build(&w.positions, &w.online, 300.0);
        let world = WorldView {
            positions: &w.positions,
            velocities: &w.velocities,
            online: &w.online,
            neighbors: &table,
        };
        for cfg in [ClusterConfig::multi_hop(), ClusterConfig::moving_zone()] {
            let clustering = form_clusters(&world, &cfg);
            for i in 0..w.positions.len() {
                let id = VehicleId(i as u32);
                match clustering.head_of(id) {
                    Some(head) => {
                        prop_assert!(w.online[i], "offline vehicle got a head");
                        prop_assert_eq!(clustering.head_of(head), Some(head));
                        prop_assert!(clustering.members(head).contains(&id));
                    }
                    None => prop_assert!(!w.online[i], "online vehicle without a head"),
                }
            }
            // Members partition the online set.
            let mut assigned: Vec<VehicleId> = clustering
                .heads()
                .flat_map(|h| clustering.members(h).to_vec())
                .collect();
            assigned.sort();
            let mut online_ids: Vec<VehicleId> = (0..w.positions.len())
                .filter(|&i| w.online[i])
                .map(|i| VehicleId(i as u32))
                .collect();
            online_ids.sort();
            prop_assert_eq!(assigned, online_ids);
        }
    }

    // Maintenance invariants mirror the from-scratch invariants: every
    // online vehicle gets a head, heads head themselves, members partition
    // the online set — regardless of what the previous round looked like.
    #[test]
    fn maintenance_invariants((before, after) in world_pair()) {
        let cfg = ClusterConfig::multi_hop();
        let table_before = NeighborTable::build(&before.positions, &before.online, 300.0);
        let world_before = WorldView {
            positions: &before.positions,
            velocities: &before.velocities,
            online: &before.online,
            neighbors: &table_before,
        };
        let previous = form_clusters(&world_before, &cfg);
        let table_after = NeighborTable::build(&after.positions, &after.online, 300.0);
        let world_after = WorldView {
            positions: &after.positions,
            velocities: &after.velocities,
            online: &after.online,
            neighbors: &table_after,
        };
        let next = vc_net::cluster::maintain_clusters(&previous, &world_after, &cfg, 0.5);
        for i in 0..after.positions.len() {
            let id = VehicleId(i as u32);
            match next.head_of(id) {
                Some(head) => {
                    prop_assert!(after.online[i]);
                    prop_assert_eq!(next.head_of(head), Some(head));
                    prop_assert!(next.members(head).contains(&id));
                }
                None => prop_assert!(!after.online[i]),
            }
        }
        let mut assigned: Vec<VehicleId> =
            next.heads().flat_map(|h| next.members(h).to_vec()).collect();
        assigned.sort();
        assigned.dedup();
        let mut online_ids: Vec<VehicleId> = (0..after.positions.len())
            .filter(|&i| after.online[i])
            .map(|i| VehicleId(i as u32))
            .collect();
        online_ids.sort();
        prop_assert_eq!(assigned, online_ids);
    }

    // Routing safety: protocols only ever forward to actual neighbors that
    // have not carried the packet, and never to the holder itself.
    #[test]
    fn routing_forwards_only_to_fresh_neighbors(w in world_strategy(30), dst_pick in any_u16(), carried_mask in any_u32()) {
        let table = NeighborTable::build(&w.positions, &w.online, 300.0);
        let world = WorldView {
            positions: &w.positions,
            velocities: &w.velocities,
            online: &w.online,
            neighbors: &table,
        };
        let n = w.positions.len();
        let dst = VehicleId((dst_pick as usize % n) as u32);
        let packet = Packet::new(PacketId(1), VehicleId(0), dst, 256, SimTime::ZERO);
        let carried = |v: VehicleId| carried_mask & (1 << (v.0 % 32)) != 0;

        let mut cluster = ClusterRouting::new();
        cluster.begin_round(&world);
        let mut mozo = MozoRouting::new();
        mozo.begin_round(&world);
        let protocols: Vec<&dyn RoutingProtocol> = vec![&Epidemic, &GreedyGeo, &cluster, &mozo];
        for proto in protocols {
            for holder_idx in 0..n {
                let holder = VehicleId(holder_idx as u32);
                if !w.online[holder_idx] {
                    continue;
                }
                for hop in proto.next_hops(holder, &packet, &world, &carried) {
                    prop_assert_ne!(hop, holder, "{} forwarded to self", proto.name());
                    prop_assert!(
                        table.of(holder).contains(&hop),
                        "{} forwarded to non-neighbor", proto.name()
                    );
                    prop_assert!(!carried(hop), "{} forwarded to carrier", proto.name());
                }
            }
        }
    }

    // Single-copy protocols return at most one next hop; epidemic returns
    // each fresh neighbor exactly once.
    #[test]
    fn hop_multiplicity(w in world_strategy(25)) {
        let table = NeighborTable::build(&w.positions, &w.online, 300.0);
        let world = WorldView {
            positions: &w.positions,
            velocities: &w.velocities,
            online: &w.online,
            neighbors: &table,
        };
        let n = w.positions.len();
        let packet = Packet::new(PacketId(1), VehicleId(0), VehicleId((n - 1) as u32), 256, SimTime::ZERO);
        let never = |_: VehicleId| false;
        let mut cluster = ClusterRouting::new();
        cluster.begin_round(&world);
        let mut mozo = MozoRouting::new();
        mozo.begin_round(&world);
        for holder_idx in 0..n {
            let holder = VehicleId(holder_idx as u32);
            prop_assert!(GreedyGeo.next_hops(holder, &packet, &world, &never).len() <= 1);
            prop_assert!(cluster.next_hops(holder, &packet, &world, &never).len() <= 1);
            prop_assert!(mozo.next_hops(holder, &packet, &world, &never).len() <= 1);
            let epi = Epidemic.next_hops(holder, &packet, &world, &never);
            let mut dedup = epi.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), epi.len(), "epidemic duplicated a target");
        }
    }

    // ---- sharded round determinism ----

    #[test]
    fn sharded_netsim_run_is_bitwise_equal_to_sequential(
        seed in any_u64(),
        shards in 2usize..9,
        vehicles in 30usize..70,
        packets in 5usize..20,
        rounds in 5usize..20,
        protocol in 0u8..3,
    ) {
        // A full instrumented run: the merged event stream (every radio
        // tx/rx/drop and routing forward/deliver, in order), the final
        // statistics (latencies compared bit for bit), and the end-state
        // fleet kinematics must all be identical at any shard count.
        let (sequential, sharded) = match protocol {
            0 => (
                sharded_run_fingerprint(seed, vehicles, packets, rounds, 1, Epidemic),
                sharded_run_fingerprint(seed, vehicles, packets, rounds, shards, Epidemic),
            ),
            1 => (
                sharded_run_fingerprint(seed, vehicles, packets, rounds, 1, GreedyGeo),
                sharded_run_fingerprint(seed, vehicles, packets, rounds, shards, GreedyGeo),
            ),
            _ => (
                sharded_run_fingerprint(seed, vehicles, packets, rounds, 1, MozoRouting::new()),
                sharded_run_fingerprint(
                    seed, vehicles, packets, rounds, shards, MozoRouting::new(),
                ),
            ),
        };
        prop_assert_eq!(sequential, sharded);
    }

    // Causal tracing composes with sharding: at any sample rate (off, all,
    // or one-in-N) the traced event stream — causal.origin/hop/deliver/drop
    // included — byte-compares between the sequential and sharded runs,
    // because the sampling decision is a pure function of (seed, packet id)
    // and worker event buffers merge in canonical order.
    #[test]
    fn traced_sharded_run_is_bitwise_equal_at_any_sample_rate(
        seed in any_u64(),
        shards in 2usize..9,
        rate_pick in 0u8..4,
        vehicles in 30usize..70,
        packets in 5usize..20,
        rounds in 5usize..20,
    ) {
        let rate = match rate_pick {
            0 => SampleRate::OFF,
            1 => SampleRate::ALL,
            2 => SampleRate::one_in(2),
            _ => SampleRate::one_in(7),
        };
        let sequential = traced_run_fingerprint(seed, vehicles, packets, rounds, 1, Epidemic, rate);
        let sharded =
            traced_run_fingerprint(seed, vehicles, packets, rounds, shards, Epidemic, rate);
        prop_assert_eq!(sequential, sharded);
    }
}

// ---------------------------------------------------------------------------
// `vc_net::svc` wire-frame properties: the daemon's length-prefixed protocol
// must round-trip arbitrary frames, survive arbitrarily fragmented reads,
// and reject truncated or oversized input with errors, never panics.

/// A reader that hands out the underlying bytes in pseudo-random small
/// pieces (1..=7 bytes), exercising every short-read path in `read_frame`.
struct SplitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    rng: SimRng,
}

impl std::io::Read for SplitReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.bytes.len() {
            return Ok(0);
        }
        let chunk =
            (self.rng.range_u64(1, 7) as usize).min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..chunk].copy_from_slice(&self.bytes[self.pos..self.pos + chunk]);
        self.pos += chunk;
        Ok(chunk)
    }
}

fn gen_svc_string(rng: &mut SimRng, max_len: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._ {}\"";
    let len = rng.range_u64(0, max_len) as usize;
    (0..len).map(|_| ALPHABET[rng.index(ALPHABET.len())] as char).collect()
}

fn gen_svc_times(rng: &mut SimRng) -> svc::JobTimes {
    svc::JobTimes {
        accepted_ns: rng.next_u64(),
        started_ns: rng.next_u64(),
        finished_ns: rng.next_u64(),
    }
}

/// One arbitrary frame of any kind, with arbitrary field contents and
/// payload lengths (chunk data up to 2 KiB).
fn gen_svc_frame(rng: &mut SimRng) -> svc::Frame {
    use svc::Frame;
    match rng.range_u64(0, 14) {
        0 => Frame::Submit {
            scenario: gen_svc_string(rng, 64),
            seed: rng.next_u64(),
            ticks: rng.next_u64() as u32,
            flags: rng.next_u64() as u32,
        },
        1 => Frame::Status { job: rng.next_u64() },
        2 => Frame::Result { job: rng.next_u64() },
        3 => Frame::Cancel { job: rng.next_u64() },
        4 => Frame::Metrics,
        5 => Frame::Shutdown,
        6 => Frame::Accepted { job: rng.next_u64() },
        7 => Frame::Rejected {
            reason: [
                svc::RejectReason::QueueFull,
                svc::RejectReason::Draining,
                svc::RejectReason::UnknownScenario,
                svc::RejectReason::BudgetExceeded,
                svc::RejectReason::BadRequest,
            ][rng.index(5)],
            detail: gen_svc_string(rng, 128),
        },
        8 => Frame::JobStatus {
            job: rng.next_u64(),
            phase: svc::JobPhase::from_u8(rng.range_u64(0, 4) as u8).unwrap(),
            queue_depth: rng.next_u64() as u32,
            times: gen_svc_times(rng),
        },
        9 => Frame::ResultHeader {
            job: rng.next_u64(),
            phase: svc::JobPhase::from_u8(rng.range_u64(0, 4) as u8).unwrap(),
            checksum: rng.next_u64(),
            stats_len: rng.next_u64(),
            trace_len: rng.next_u64(),
            times: gen_svc_times(rng),
        },
        10 => {
            let len = rng.range_u64(0, 2048) as usize;
            Frame::Chunk {
                job: rng.next_u64(),
                channel: if rng.chance(0.5) { svc::Channel::Stats } else { svc::Channel::Trace },
                data: (0..len).map(|_| rng.next_u64() as u8).collect(),
            }
        }
        11 => Frame::ResultEnd { job: rng.next_u64() },
        12 => Frame::MetricsReply { json: gen_svc_string(rng, 256) },
        13 => Frame::Okay,
        _ => Frame::Error { detail: gen_svc_string(rng, 128) },
    }
}

fn svc_frame_strategy() -> FromFn<impl Fn(&mut SimRng) -> vc_net::svc::Frame> {
    from_fn(gen_svc_frame)
}

/// A short pseudo-random sequence of frames (1..=8).
fn svc_burst_strategy() -> FromFn<impl Fn(&mut SimRng) -> Vec<vc_net::svc::Frame>> {
    from_fn(|rng| {
        let n = rng.range_u64(1, 8) as usize;
        (0..n).map(|_| gen_svc_frame(rng)).collect()
    })
}

use vc_net::svc;

prop! {
    #![cases(96)]

    // Every frame kind round-trips through encode/decode bit-exactly.
    #[test]
    fn svc_frames_roundtrip(frame in svc_frame_strategy()) {
        let payload = frame.encode();
        prop_assert!(payload.len() <= svc::MAX_FRAME_LEN);
        prop_assert_eq!(svc::Frame::decode(&payload), Ok(frame));
    }

    // A burst of frames written to one stream is recovered intact even when
    // the transport delivers the bytes in tiny fragments that split length
    // prefixes and payloads at arbitrary boundaries.
    #[test]
    fn svc_streams_survive_split_reads(frames in svc_burst_strategy(), split_seed in any_u64()) {
        let mut wire = Vec::new();
        for frame in &frames {
            svc::write_frame(&mut wire, frame).unwrap();
        }
        let mut reader =
            SplitReader { bytes: &wire, pos: 0, rng: SimRng::seed_from(split_seed) };
        let mut decoded = Vec::new();
        while let Some(frame) = svc::read_decode(&mut reader).unwrap() {
            decoded.push(frame);
        }
        prop_assert_eq!(decoded, frames);
    }

    // Any strict prefix of a frame payload decodes to an error — never a
    // panic, and never a silently-successful partial parse.
    #[test]
    fn svc_truncated_frames_error_not_panic(frame in svc_frame_strategy(), cut_pick in any_u64()) {
        let payload = frame.encode();
        let cut = (cut_pick % payload.len() as u64) as usize;
        prop_assert!(svc::Frame::decode(&payload[..cut]).is_err());
        // And at the stream level: a frame whose payload stops early is an
        // UnexpectedEof, not a hang or a panic.
        let mut wire = Vec::new();
        svc::write_frame(&mut wire, &frame).unwrap();
        let short = &wire[..4 + cut];
        let err = svc::read_decode(&mut std::io::Cursor::new(short)).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    // Oversized declared lengths are rejected before any allocation: at the
    // stream level (length prefix beyond MAX_FRAME_LEN) and at the field
    // level (string/bytes length beyond the cap or the remaining payload).
    #[test]
    fn svc_oversized_lengths_are_rejected(
        excess in any_u32(),
        tail in any_u16(),
        job in any_u64(),
    ) {
        let declared = svc::MAX_FRAME_LEN as u64 + 1 + excess as u64 % (u32::MAX as u64 >> 1);
        let mut wire = (declared as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&tail.to_be_bytes());
        let err = svc::read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Field level: an ERROR frame whose detail claims more bytes than
        // the payload holds must fail with a length error.
        let mut w = vc_net::bytebuf::ByteWriter::with_capacity(16);
        w.put_u8(0x89); // K_ERROR
        w.put_u32(1 + (excess % 1024) + tail as u32);
        w.put_u64(job); // 8 bytes of "detail", fewer than declared
        prop_assert!(svc::Frame::decode(&w.into_vec()).is_err());
    }
}
