//! Event reports: the messages whose trustworthiness must be judged.
//!
//! A report is one vehicle's claim about a physical event ("ice at this
//! bend"). The validator stack (paper §III-D, §V-D) never sees identities —
//! only pseudonyms, claimed kinematics, and the routing path the report
//! arrived over.

use vc_sim::geom::Point;
use vc_sim::node::VehicleId;
use vc_sim::time::SimTime;

/// Physical event classes vehicles report about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Collision / accident.
    Accident,
    /// Ice or slippery surface.
    Ice,
    /// Traffic congestion.
    Congestion,
    /// Road blocked (debris, flood).
    RoadBlocked,
    /// Explicit all-clear.
    RoadClear,
}

/// One vehicle's claim about an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Pseudonymous reporter id (stable only within a rotation window).
    pub reporter: u64,
    /// What kind of event is claimed.
    pub kind: EventKind,
    /// Where the event is claimed to be.
    pub location: Point,
    /// When the reporter claims to have observed it.
    pub observed_at: SimTime,
    /// The claim: `true` = event present, `false` = explicitly absent.
    pub claim: bool,
    /// Reporter's own claimed position at observation time.
    pub reporter_pos: Point,
    /// Reporter's claimed speed, m/s.
    pub reporter_speed: f64,
    /// The multi-hop path the report traveled (first = reporter's first
    /// relay). Path overlap between reports is a collusion signal (§V-D
    /// "routing path similarity").
    pub path: Vec<VehicleId>,
}

impl Report {
    /// Distance between the claimed event location and the reporter's own
    /// claimed position — implausibly large values are a forgery signal
    /// (vehicles sense locally).
    pub fn observation_distance(&self) -> f64 {
        self.location.distance(self.reporter_pos)
    }
}

/// A group of reports the classifier judged to concern the same event.
#[derive(Debug, Clone, Default)]
pub struct EventCluster {
    /// Member reports.
    pub reports: Vec<Report>,
}

impl EventCluster {
    /// Number of reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The kind shared by the cluster (None when empty).
    pub fn kind(&self) -> Option<EventKind> {
        self.reports.first().map(|r| r.kind)
    }

    /// Centroid of claimed event locations.
    pub fn centroid(&self) -> Point {
        if self.reports.is_empty() {
            return Point::new(0.0, 0.0);
        }
        let sum = self.reports.iter().fold(Point::new(0.0, 0.0), |acc, r| acc + r.location);
        sum / self.reports.len() as f64
    }

    /// Fraction of positive claims.
    pub fn positive_fraction(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.claim).count() as f64 / self.reports.len() as f64
    }
}

/// Pairwise path-overlap (Jaccard) between two reports' routing paths; 1.0
/// means identical relays, 0.0 disjoint. High overlap across many reports
/// means the "independent" confirmations share a chokepoint (or a colluder).
pub fn path_overlap(a: &Report, b: &Report) -> f64 {
    if a.path.is_empty() && b.path.is_empty() {
        // Both direct receptions: treat as independent.
        return 0.0;
    }
    let sa: std::collections::BTreeSet<_> = a.path.iter().collect();
    let sb: std::collections::BTreeSet<_> = b.path.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(reporter: u64, claim: bool, loc: Point, path: Vec<u32>) -> Report {
        Report {
            reporter,
            kind: EventKind::Ice,
            location: loc,
            observed_at: SimTime::from_secs(10),
            claim,
            reporter_pos: loc + Point::new(20.0, 0.0),
            reporter_speed: 10.0,
            path: path.into_iter().map(VehicleId).collect(),
        }
    }

    #[test]
    fn observation_distance() {
        let r = report(1, true, Point::new(0.0, 0.0), vec![]);
        assert_eq!(r.observation_distance(), 20.0);
    }

    #[test]
    fn cluster_statistics() {
        let c = EventCluster {
            reports: vec![
                report(1, true, Point::new(0.0, 0.0), vec![]),
                report(2, true, Point::new(10.0, 0.0), vec![]),
                report(3, false, Point::new(5.0, 3.0), vec![]),
            ],
        };
        assert_eq!(c.len(), 3);
        assert_eq!(c.kind(), Some(EventKind::Ice));
        let cen = c.centroid();
        assert!((cen.x - 5.0).abs() < 1e-12 && (cen.y - 1.0).abs() < 1e-12);
        assert!((c.positive_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_is_calm() {
        let c = EventCluster::default();
        assert!(c.is_empty());
        assert_eq!(c.kind(), None);
        assert_eq!(c.positive_fraction(), 0.0);
    }

    #[test]
    fn path_overlap_cases() {
        let a = report(1, true, Point::new(0.0, 0.0), vec![1, 2, 3]);
        let b = report(2, true, Point::new(0.0, 0.0), vec![1, 2, 3]);
        let c = report(3, true, Point::new(0.0, 0.0), vec![4, 5]);
        let d = report(4, true, Point::new(0.0, 0.0), vec![2, 4]);
        assert_eq!(path_overlap(&a, &b), 1.0);
        assert_eq!(path_overlap(&a, &c), 0.0);
        assert!((path_overlap(&a, &d) - 0.25).abs() < 1e-12, "1 shared of 4 total");
        let direct1 = report(5, true, Point::new(0.0, 0.0), vec![]);
        let direct2 = report(6, true, Point::new(0.0, 0.0), vec![]);
        assert_eq!(path_overlap(&direct1, &direct2), 0.0);
    }
}
