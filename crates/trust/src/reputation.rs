//! Beta-distribution reputation, the classical baseline (paper §IV-D).
//!
//! Each (pseudonymous) reporter accumulates confirmed-good and
//! confirmed-bad outcomes; its reliability estimate is the Beta posterior
//! mean `(good + 1) / (good + bad + 2)`. The paper's critique — reputation
//! "is established over a period of time and a relatively stable network,
//! and neither of these exists in VANETs" — shows up in E9 as cold-start
//! weakness: short encounters mean most reporters sit near the 0.5 prior.

use std::collections::BTreeMap;

/// A reputation ledger keyed by pseudonymous reporter id.
#[derive(Debug, Clone, Default)]
pub struct ReputationStore {
    entries: BTreeMap<u64, (f64, f64)>, // (good, bad)
    /// Multiplicative decay applied by [`ReputationStore::decay_all`];
    /// recent evidence outweighs stale evidence.
    pub decay: f64,
}

impl ReputationStore {
    /// Creates an empty store with 0.95 decay.
    pub fn new() -> Self {
        ReputationStore { entries: BTreeMap::new(), decay: 0.95 }
    }

    /// Records a confirmed outcome for a reporter.
    pub fn record(&mut self, reporter: u64, was_correct: bool) {
        let e = self.entries.entry(reporter).or_insert((0.0, 0.0));
        if was_correct {
            e.0 += 1.0;
        } else {
            e.1 += 1.0;
        }
    }

    /// Reliability estimate in `(0, 1)`: the Beta posterior mean. Unknown
    /// reporters get the uninformative prior 0.5.
    pub fn reliability(&self, reporter: u64) -> f64 {
        match self.entries.get(&reporter) {
            Some(&(good, bad)) => (good + 1.0) / (good + bad + 2.0),
            None => 0.5,
        }
    }

    /// Evidence mass behind the estimate (0 for unknown reporters).
    pub fn evidence(&self, reporter: u64) -> f64 {
        self.entries.get(&reporter).map_or(0.0, |&(g, b)| g + b)
    }

    /// Applies one decay step to all entries (call per epoch).
    pub fn decay_all(&mut self) {
        for e in self.entries.values_mut() {
            e.0 *= self.decay;
            e.1 *= self.decay;
        }
    }

    /// Number of reporters tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no reporter has history.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_reporter_is_neutral() {
        let store = ReputationStore::new();
        assert_eq!(store.reliability(42), 0.5);
        assert_eq!(store.evidence(42), 0.0);
    }

    #[test]
    fn good_history_raises_reliability() {
        let mut store = ReputationStore::new();
        for _ in 0..8 {
            store.record(1, true);
        }
        assert!((store.reliability(1) - 0.9).abs() < 1e-12); // (8+1)/(8+2)
        assert_eq!(store.evidence(1), 8.0);
    }

    #[test]
    fn bad_history_lowers_reliability() {
        let mut store = ReputationStore::new();
        for _ in 0..8 {
            store.record(2, false);
        }
        assert!((store.reliability(2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mixed_history_balances() {
        let mut store = ReputationStore::new();
        store.record(3, true);
        store.record(3, false);
        assert_eq!(store.reliability(3), 0.5);
    }

    #[test]
    fn decay_pulls_toward_prior() {
        let mut store = ReputationStore::new();
        for _ in 0..20 {
            store.record(4, true);
        }
        let before = store.reliability(4);
        for _ in 0..100 {
            store.decay_all();
        }
        let after = store.reliability(4);
        assert!(after < before);
        assert!((after - 0.5).abs() < 0.1, "long decay approaches the prior, got {after}");
    }

    #[test]
    fn reliability_stays_in_open_interval() {
        let mut store = ReputationStore::new();
        for _ in 0..10_000 {
            store.record(5, true);
        }
        let r = store.reliability(5);
        assert!(r > 0.0 && r < 1.0);
    }
}
