//! Message content validators (paper §V-D component 2).
//!
//! Given the reports the classifier grouped for one event, each validator
//! produces a trust score in `[0, 1]` for "the event is real". Four
//! combiners, from naive to robust — exactly the design space §IV-D cites
//! (Raya et al.'s voting and Bayesian inference, plus path-similarity
//! weighting from §V-D and Dempster–Shafer evidence combination):
//!
//! * [`MajorityVote`] — count heads; collapses once attackers are a majority
//! * [`WeightedVote`] — reputation × path-independence × plausibility
//!   weights; resists collusion that funnels through shared relays
//! * [`Bayesian`] — per-reporter reliability as likelihood; sharp when
//!   reputations are warm, neutral when cold
//! * [`DempsterShafer`] — explicit uncertainty mass; degrades gracefully
//!   under conflicting evidence

use crate::report::{path_overlap, EventCluster, Report};
use crate::reputation::ReputationStore;

/// Physical-plausibility prefactor for one report, in `[0, 1]`.
///
/// Vehicles sense locally and move at road speeds; reports violating either
/// are discounted before any combination (§III-D: verify "speed, direction
/// and location is correct").
pub fn plausibility(report: &Report) -> f64 {
    let mut factor = 1.0;
    // Claimed to observe an event farther than any on-board sensor sees.
    if report.observation_distance() > 200.0 {
        factor *= 0.2;
    }
    // Claimed reporter speed beyond physical road speeds.
    if report.reporter_speed > 60.0 || report.reporter_speed < 0.0 {
        factor *= 0.2;
    }
    factor
}

/// A trust-score combiner over one event's reports.
pub trait Validator {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Trust score in `[0, 1]` that the event is real.
    fn score(&self, cluster: &EventCluster, reputation: &ReputationStore) -> f64;

    /// Decision at the conventional 0.5 threshold.
    fn decide(&self, cluster: &EventCluster, reputation: &ReputationStore) -> bool {
        self.score(cluster, reputation) >= 0.5
    }
}

/// Unweighted majority voting.
#[derive(Debug, Default)]
pub struct MajorityVote;

impl Validator for MajorityVote {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn score(&self, cluster: &EventCluster, _reputation: &ReputationStore) -> f64 {
        cluster.positive_fraction()
    }
}

/// Reputation-, path-, and plausibility-weighted voting.
#[derive(Debug, Default)]
pub struct WeightedVote;

impl Validator for WeightedVote {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn score(&self, cluster: &EventCluster, reputation: &ReputationStore) -> f64 {
        if cluster.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut positive = 0.0;
        let mut counted: Vec<&Report> = Vec::new();
        for report in &cluster.reports {
            // Path independence: discount a report by its maximum overlap
            // with reports already counted — k colluding copies through the
            // same relay chain weigh barely more than one.
            let max_overlap = counted.iter().map(|c| path_overlap(report, c)).fold(0.0, f64::max);
            let independence = 1.0 - max_overlap;
            let weight =
                reputation.reliability(report.reporter) * independence * plausibility(report);
            total += weight;
            if report.claim {
                positive += weight;
            }
            counted.push(report);
        }
        if total == 0.0 {
            0.5
        } else {
            positive / total
        }
    }
}

/// Bayesian combination with per-reporter reliability likelihoods.
#[derive(Debug, Default)]
pub struct Bayesian;

impl Validator for Bayesian {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn score(&self, cluster: &EventCluster, reputation: &ReputationStore) -> f64 {
        if cluster.is_empty() {
            return 0.5;
        }
        // Posterior log-odds starting from an even prior.
        let mut log_odds = 0.0f64;
        for report in &cluster.reports {
            let r = reputation.reliability(report.reporter).clamp(0.02, 0.98);
            // Plausibility shrinks the evidence toward neutrality.
            let p = plausibility(report);
            let effective = 0.5 + (r - 0.5) * p;
            let factor = if report.claim {
                effective / (1.0 - effective)
            } else {
                (1.0 - effective) / effective
            };
            log_odds += factor.ln();
        }
        let odds = log_odds.exp();
        odds / (1.0 + odds)
    }
}

/// Dempster–Shafer evidence combination with an explicit "unknown" mass.
#[derive(Debug, Default)]
pub struct DempsterShafer;

impl Validator for DempsterShafer {
    fn name(&self) -> &'static str {
        "dempster-shafer"
    }

    fn score(&self, cluster: &EventCluster, reputation: &ReputationStore) -> f64 {
        if cluster.is_empty() {
            return 0.5;
        }
        // Running masses: belief in True, False, and Unknown (frame Θ).
        let (mut mt, mut mf, mut mu) = (0.0f64, 0.0f64, 1.0f64);
        for report in &cluster.reports {
            let r = reputation.reliability(report.reporter);
            // Confidence: distance from the uninformative prior, scaled by
            // plausibility; an unknown reporter contributes mostly "unknown".
            let confidence = ((r - 0.5).abs() * 2.0).max(0.2) * plausibility(report);
            let (rt, rf) = if report.claim { (confidence, 0.0) } else { (0.0, confidence) };
            let ru = 1.0 - rt - rf;
            // Dempster's rule of combination.
            let conflict = mt * rf + mf * rt;
            let norm = 1.0 - conflict;
            if norm <= 1e-9 {
                // Total conflict: fall back to ignorance.
                mt = 0.0;
                mf = 0.0;
                mu = 1.0;
                continue;
            }
            let new_t = (mt * rt + mt * ru + mu * rt) / norm;
            let new_f = (mf * rf + mf * ru + mu * rf) / norm;
            mt = new_t;
            mf = new_f;
            mu = (1.0 - mt - mf).max(0.0);
        }
        // Pignistic transform: split the unknown mass evenly.
        mt + mu * 0.5
    }
}

/// All four validators, boxed, for sweep experiments.
pub fn all_validators() -> Vec<Box<dyn Validator>> {
    vec![
        Box::new(MajorityVote),
        Box::new(WeightedVote),
        Box::new(Bayesian),
        Box::new(DempsterShafer),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::EventKind;
    use vc_sim::geom::Point;
    use vc_sim::node::VehicleId;
    use vc_sim::time::SimTime;

    fn report(reporter: u64, claim: bool, path: Vec<u32>) -> Report {
        Report {
            reporter,
            kind: EventKind::Ice,
            location: Point::new(0.0, 0.0),
            observed_at: SimTime::from_secs(1),
            claim,
            reporter_pos: Point::new(30.0, 0.0),
            reporter_speed: 15.0,
            path: path.into_iter().map(VehicleId).collect(),
        }
    }

    fn cluster(reports: Vec<Report>) -> EventCluster {
        EventCluster { reports }
    }

    #[test]
    fn majority_follows_the_count() {
        let c = cluster(vec![
            report(1, true, vec![]),
            report(2, true, vec![]),
            report(3, false, vec![]),
        ]);
        let rep = ReputationStore::new();
        let v = MajorityVote;
        assert!((v.score(&c, &rep) - 2.0 / 3.0).abs() < 1e-12);
        assert!(v.decide(&c, &rep));
    }

    #[test]
    fn weighted_discounts_shared_paths() {
        // Three colluding "true" reports through the same relays vs two
        // independent honest "false" reports.
        let c = cluster(vec![
            report(1, true, vec![10, 11, 12]),
            report(2, true, vec![10, 11, 12]),
            report(3, true, vec![10, 11, 12]),
            report(4, false, vec![20]),
            report(5, false, vec![30]),
        ]);
        let rep = ReputationStore::new();
        let naive = MajorityVote.score(&c, &rep);
        let weighted = WeightedVote.score(&c, &rep);
        assert!(naive > 0.5, "majority is fooled: {naive}");
        assert!(weighted < 0.5, "weighting must defeat path collusion: {weighted}");
    }

    #[test]
    fn bayesian_uses_reputation() {
        let mut rep = ReputationStore::new();
        // Reporter 1 is known-good; reporters 2 and 3 known-bad.
        for _ in 0..10 {
            rep.record(1, true);
            rep.record(2, false);
            rep.record(3, false);
        }
        let c = cluster(vec![
            report(1, true, vec![1]),
            report(2, false, vec![2]),
            report(3, false, vec![3]),
        ]);
        let naive = MajorityVote.score(&c, &rep);
        let bayes = Bayesian.score(&c, &rep);
        assert!(naive < 0.5);
        // Liars claiming "false" are evidence FOR the event.
        assert!(bayes > 0.5, "bayesian must trust the reliable reporter: {bayes}");
    }

    #[test]
    fn bayesian_neutral_when_cold() {
        let rep = ReputationStore::new();
        let c = cluster(vec![report(1, true, vec![1]), report(2, false, vec![2])]);
        let score = Bayesian.score(&c, &rep);
        assert!((score - 0.5).abs() < 1e-9, "cold start is neutral: {score}");
    }

    #[test]
    fn dempster_shafer_accumulates_agreement() {
        let mut rep = ReputationStore::new();
        for r in 1..=4 {
            for _ in 0..8 {
                rep.record(r, true);
            }
        }
        let c = cluster((1..=4).map(|r| report(r, true, vec![r as u32])).collect());
        let score = DempsterShafer.score(&c, &rep);
        assert!(score > 0.9, "four reliable agreeing witnesses: {score}");
        let c_against = cluster((1..=4).map(|r| report(r, false, vec![r as u32])).collect());
        let score2 = DempsterShafer.score(&c_against, &rep);
        assert!(score2 < 0.1, "four reliable denials: {score2}");
    }

    #[test]
    fn dempster_shafer_keeps_uncertainty_with_unknowns() {
        let rep = ReputationStore::new();
        let c = cluster(vec![report(1, true, vec![1])]);
        let score = DempsterShafer.score(&c, &rep);
        assert!(score > 0.5 && score < 0.7, "one unknown witness is weak evidence: {score}");
    }

    #[test]
    fn plausibility_flags_remote_observations() {
        let mut far = report(1, true, vec![]);
        far.reporter_pos = Point::new(5000.0, 0.0);
        assert!(plausibility(&far) < 0.5);
        let mut fast = report(2, true, vec![]);
        fast.reporter_speed = 300.0;
        assert!(plausibility(&fast) < 0.5);
        assert_eq!(plausibility(&report(3, true, vec![])), 1.0);
    }

    #[test]
    fn implausible_reports_count_less_in_weighted() {
        let mut liar = report(1, true, vec![1]);
        liar.reporter_pos = Point::new(5000.0, 0.0); // claims to see 5km away
        let honest1 = report(2, false, vec![2]);
        let honest2 = report(3, false, vec![3]);
        let c = cluster(vec![liar, honest1, honest2]);
        let rep = ReputationStore::new();
        assert!(WeightedVote.score(&c, &rep) < 0.3);
    }

    #[test]
    fn empty_cluster_scores() {
        let rep = ReputationStore::new();
        let c = EventCluster::default();
        assert_eq!(MajorityVote.score(&c, &rep), 0.0);
        assert_eq!(Bayesian.score(&c, &rep), 0.5);
        assert_eq!(DempsterShafer.score(&c, &rep), 0.5);
        assert_eq!(WeightedVote.score(&c, &rep), 0.0);
    }

    #[test]
    fn all_validators_have_unique_names() {
        let names: Vec<&str> = all_validators().iter().map(|v| v.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let mut rep = ReputationStore::new();
        for r in 0..20 {
            for _ in 0..(r % 7) {
                rep.record(r, r % 2 == 0);
            }
        }
        let c = cluster((0..20).map(|r| report(r, r % 3 != 0, vec![(r % 5) as u32])).collect());
        for v in all_validators() {
            let s = v.score(&c, &rep);
            assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", v.name());
        }
    }
}
