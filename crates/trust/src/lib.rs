//! # vc-trust — real-time information trustworthiness assessment
//!
//! The paper's fourth research thrust (§III-D, §IV-D, §V-D): a vehicle
//! receiving conflicting reports about a physical event must decide, under
//! time pressure, whether the event is real.
//!
//! * [`report`] — event reports with pseudonymous senders and routing paths
//! * [`classifier`] — groups inbox messages into per-event clusters
//!   (component 1 of §V-D's trust model)
//! * [`validators`] — four content validators from naive voting to
//!   Dempster–Shafer, with physical-plausibility prefilters (component 2)
//! * [`reputation`] — the Beta-reputation baseline the paper critiques
//!
//! Experiment E9 sweeps attacker fraction and collusion structure across
//! all validators.
//!
//! ## Example
//!
//! ```
//! use vc_trust::prelude::*;
//! use vc_sim::prelude::{Point, SimTime, VehicleId};
//!
//! let reports: Vec<Report> = (0..5)
//!     .map(|i| Report {
//!         reporter: i,
//!         kind: EventKind::Ice,
//!         location: Point::new(0.0, 0.0),
//!         observed_at: SimTime::from_secs(1),
//!         claim: i < 4, // 4 confirmations, 1 denial
//!         reporter_pos: Point::new(10.0, 0.0),
//!         reporter_speed: 10.0,
//!         path: vec![VehicleId(i as u32)],
//!     })
//!     .collect();
//! let clusters = classify(&reports, &ClassifierConfig::default());
//! assert_eq!(clusters.len(), 1);
//! let rep = ReputationStore::new();
//! assert!(MajorityVote.decide(&clusters[0], &rep));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classifier;
pub mod provenance;
pub mod report;
pub mod reputation;
pub mod validators;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::classifier::{classify, ClassifierConfig};
    pub use crate::provenance::{
        multi_path_trust, path_trust, NodeTrust, ProvenanceConfig, ProvenancePath, ProvenanceStep,
    };
    pub use crate::report::{path_overlap, EventCluster, EventKind, Report};
    pub use crate::reputation::ReputationStore;
    pub use crate::validators::{
        all_validators, plausibility, Bayesian, DempsterShafer, MajorityVote, Validator,
        WeightedVote,
    };
}
