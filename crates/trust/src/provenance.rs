//! Provenance-based trustworthiness (paper §V-D pointer to Lim, Moon &
//! Bertino [20]: "provenance-based trustworthiness assessment in sensor
//! networks").
//!
//! A data item's trust derives from *where it came from and how it
//! traveled*: the source's trust, attenuated across every intermediate
//! processor, and reinforced when independent provenance paths agree. This
//! complements the per-message validators in [`validators`](crate::validators):
//! those judge a cluster of claims, this judges one item's pedigree.

use std::collections::BTreeMap;
use vc_sim::node::VehicleId;

/// A node in a provenance graph: who touched the data and what they did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenanceStep {
    /// The node sensed/created the value.
    Source(VehicleId),
    /// The node relayed it unchanged.
    Relay(VehicleId),
    /// The node transformed/aggregated it (higher tampering opportunity).
    Processor(VehicleId),
}

impl ProvenanceStep {
    /// The vehicle at this step.
    pub fn who(&self) -> VehicleId {
        match self {
            ProvenanceStep::Source(v) | ProvenanceStep::Relay(v) | ProvenanceStep::Processor(v) => {
                *v
            }
        }
    }
}

/// One item's provenance: an ordered path from source to receiver.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenancePath {
    /// Steps, source first.
    pub steps: Vec<ProvenanceStep>,
}

impl ProvenancePath {
    /// Creates a path from a source through relays.
    pub fn new(source: VehicleId, relays: &[VehicleId]) -> Self {
        let mut steps = vec![ProvenanceStep::Source(source)];
        steps.extend(relays.iter().map(|&r| ProvenanceStep::Relay(r)));
        ProvenancePath { steps }
    }

    /// The source, if the path is well-formed (starts with a source step).
    pub fn source(&self) -> Option<VehicleId> {
        match self.steps.first() {
            Some(ProvenanceStep::Source(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Per-node trust scores used by the evaluator (defaults to 0.5 for unknown
/// nodes, like the reputation store's prior).
#[derive(Debug, Clone, Default)]
pub struct NodeTrust {
    scores: BTreeMap<VehicleId, f64>,
}

impl NodeTrust {
    /// Creates an empty table.
    pub fn new() -> Self {
        NodeTrust::default()
    }

    /// Sets a node's trust in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `score` is outside `[0, 1]`.
    pub fn set(&mut self, node: VehicleId, score: f64) {
        assert!((0.0..=1.0).contains(&score), "trust must be in [0,1]");
        self.scores.insert(node, score);
    }

    /// A node's trust (0.5 prior when unknown).
    pub fn get(&self, node: VehicleId) -> f64 {
        self.scores.get(&node).copied().unwrap_or(0.5)
    }
}

/// Evaluator parameters.
#[derive(Debug, Clone)]
pub struct ProvenanceConfig {
    /// Trust attenuation per relay hop (a relay can drop/delay but the
    /// signature protects content): multiplier close to 1.
    pub relay_attenuation: f64,
    /// Attenuation per processing hop (a processor could tamper): smaller.
    pub processor_attenuation: f64,
}

impl Default for ProvenanceConfig {
    fn default() -> Self {
        ProvenanceConfig { relay_attenuation: 0.97, processor_attenuation: 0.85 }
    }
}

/// Trust of a single item given its provenance path: source trust attenuated
/// along the path, weighted by the minimum-trust node it passed through
/// ("a chain is as strong as its weakest link").
pub fn path_trust(path: &ProvenancePath, nodes: &NodeTrust, config: &ProvenanceConfig) -> f64 {
    let Some(source) = path.source() else {
        return 0.0;
    };
    let mut trust = nodes.get(source);
    let mut weakest: f64 = trust;
    for step in &path.steps[1..] {
        let node_trust = nodes.get(step.who());
        weakest = weakest.min(node_trust);
        trust *= match step {
            ProvenanceStep::Source(_) => 1.0,
            ProvenanceStep::Relay(_) => config.relay_attenuation,
            ProvenanceStep::Processor(_) => config.processor_attenuation,
        };
    }
    (trust * weakest).clamp(0.0, 1.0)
}

/// Combined trust of one value received over several *distinct* provenance
/// paths: independent agreement compounds (noisy-OR), shared nodes are
/// counted once.
pub fn multi_path_trust(
    paths: &[ProvenancePath],
    nodes: &NodeTrust,
    config: &ProvenanceConfig,
) -> f64 {
    if paths.is_empty() {
        return 0.0;
    }
    // Noisy-OR over per-path distrust, discounted by overlap: a path that
    // shares nodes with an earlier path only contributes its non-shared
    // fraction.
    let mut seen_nodes: std::collections::BTreeSet<VehicleId> = std::collections::BTreeSet::new();
    let mut distrust = 1.0f64;
    for path in paths {
        let t = path_trust(path, nodes, config);
        let total = path.len().max(1);
        let fresh = path.steps.iter().filter(|s| !seen_nodes.contains(&s.who())).count();
        let independence = fresh as f64 / total as f64;
        distrust *= 1.0 - t * independence;
        for s in &path.steps {
            seen_nodes.insert(s.who());
        }
    }
    1.0 - distrust
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VehicleId {
        VehicleId(i)
    }

    #[test]
    fn direct_source_keeps_its_trust() {
        let mut nodes = NodeTrust::new();
        nodes.set(v(1), 0.9);
        let path = ProvenancePath::new(v(1), &[]);
        let t = path_trust(&path, &nodes, &ProvenanceConfig::default());
        assert!((t - 0.81).abs() < 1e-9, "source trust × weakest(=source): {t}");
    }

    #[test]
    fn relays_attenuate_gently_processors_strongly() {
        let mut nodes = NodeTrust::new();
        for i in 1..=4 {
            nodes.set(v(i), 0.9);
        }
        let cfg = ProvenanceConfig::default();
        let relayed = ProvenancePath::new(v(1), &[v(2), v(3), v(4)]);
        let mut processed = ProvenancePath::new(v(1), &[]);
        processed.steps.push(ProvenanceStep::Processor(v(2)));
        processed.steps.push(ProvenanceStep::Processor(v(3)));
        processed.steps.push(ProvenanceStep::Processor(v(4)));
        let tr = path_trust(&relayed, &nodes, &cfg);
        let tp = path_trust(&processed, &nodes, &cfg);
        assert!(tr > tp, "relays {tr} must attenuate less than processors {tp}");
        assert!(tr < 0.81, "some attenuation applies");
    }

    #[test]
    fn weakest_link_dominates() {
        let mut nodes = NodeTrust::new();
        nodes.set(v(1), 0.95);
        nodes.set(v(2), 0.95);
        nodes.set(v(3), 0.05); // compromised relay
        let good = ProvenancePath::new(v(1), &[v(2)]);
        let bad = ProvenancePath::new(v(1), &[v(3)]);
        let cfg = ProvenanceConfig::default();
        assert!(path_trust(&bad, &nodes, &cfg) < path_trust(&good, &nodes, &cfg) / 3.0);
    }

    #[test]
    fn malformed_path_scores_zero() {
        let nodes = NodeTrust::new();
        let cfg = ProvenanceConfig::default();
        assert_eq!(path_trust(&ProvenancePath::default(), &nodes, &cfg), 0.0);
        let mut headless = ProvenancePath::default();
        headless.steps.push(ProvenanceStep::Relay(v(1)));
        assert_eq!(path_trust(&headless, &nodes, &cfg), 0.0);
    }

    #[test]
    fn independent_paths_compound() {
        let mut nodes = NodeTrust::new();
        for i in 1..=6 {
            nodes.set(v(i), 0.8);
        }
        let cfg = ProvenanceConfig::default();
        let p1 = ProvenancePath::new(v(1), &[v(2)]);
        let p2 = ProvenancePath::new(v(3), &[v(4)]);
        let p3 = ProvenancePath::new(v(5), &[v(6)]);
        let single = multi_path_trust(std::slice::from_ref(&p1), &nodes, &cfg);
        let triple = multi_path_trust(&[p1, p2, p3], &nodes, &cfg);
        assert!(triple > single, "independent corroboration raises trust");
        assert!(triple <= 1.0);
    }

    #[test]
    fn shared_path_does_not_compound() {
        let mut nodes = NodeTrust::new();
        for i in 1..=3 {
            nodes.set(v(i), 0.8);
        }
        let cfg = ProvenanceConfig::default();
        // Three "paths" that are all the same chain.
        let p = ProvenancePath::new(v(1), &[v(2), v(3)]);
        let single = multi_path_trust(std::slice::from_ref(&p), &nodes, &cfg);
        let fake_triple = multi_path_trust(&[p.clone(), p.clone(), p], &nodes, &cfg);
        assert!(
            (fake_triple - single).abs() < 1e-9,
            "duplicated provenance adds nothing: {single} vs {fake_triple}"
        );
    }

    #[test]
    fn unknown_nodes_get_prior() {
        let nodes = NodeTrust::new();
        assert_eq!(nodes.get(v(42)), 0.5);
        let cfg = ProvenanceConfig::default();
        let t = path_trust(&ProvenancePath::new(v(42), &[]), &nodes, &cfg);
        assert!((t - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_multi_path_is_zero() {
        assert_eq!(multi_path_trust(&[], &NodeTrust::new(), &ProvenanceConfig::default()), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_trust_rejected() {
        NodeTrust::new().set(v(1), 1.5);
    }
}
