//! The message classifier (paper §V-D component 1).
//!
//! "A message classifier module needs to be designed to identify messages
//! belonging to the same event": reports are grouped when they share an
//! event kind and fall within a spatial radius and temporal window of an
//! existing cluster. Greedy, single-pass, deterministic — a vehicle runs
//! this on the fly over its message inbox.

use crate::report::{EventCluster, Report};
use vc_sim::time::SimDuration;

/// Classifier parameters.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// Reports within this distance of a cluster's centroid may join it.
    pub radius_m: f64,
    /// Reports within this window of the cluster's earliest observation may
    /// join it.
    pub window: SimDuration,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig { radius_m: 150.0, window: SimDuration::from_secs(60) }
    }
}

/// Groups `reports` into per-event clusters.
///
/// Reports are processed in observation-time order; each joins the first
/// cluster of the same kind within radius and window, else founds a new one.
pub fn classify(reports: &[Report], config: &ClassifierConfig) -> Vec<EventCluster> {
    let mut ordered: Vec<&Report> = reports.iter().collect();
    ordered.sort_by_key(|r| (r.observed_at, r.reporter));
    let mut clusters: Vec<EventCluster> = Vec::new();
    for report in ordered {
        let mut joined = false;
        for cluster in &mut clusters {
            if cluster.kind() != Some(report.kind) {
                continue;
            }
            let centroid = cluster.centroid();
            if centroid.distance(report.location) > config.radius_m {
                continue;
            }
            let earliest =
                cluster.reports.iter().map(|r| r.observed_at).min().expect("cluster non-empty");
            if report.observed_at.saturating_since(earliest) > config.window {
                continue;
            }
            cluster.reports.push(report.clone());
            joined = true;
            break;
        }
        if !joined {
            clusters.push(EventCluster { reports: vec![report.clone()] });
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::EventKind;
    use vc_sim::geom::Point;
    use vc_sim::node::VehicleId;
    use vc_sim::time::SimTime;

    fn report(kind: EventKind, x: f64, t: u64, reporter: u64) -> Report {
        Report {
            reporter,
            kind,
            location: Point::new(x, 0.0),
            observed_at: SimTime::from_secs(t),
            claim: true,
            reporter_pos: Point::new(x, 10.0),
            reporter_speed: 5.0,
            path: vec![VehicleId(reporter as u32)],
        }
    }

    #[test]
    fn same_place_same_kind_groups() {
        let reports = vec![
            report(EventKind::Ice, 0.0, 10, 1),
            report(EventKind::Ice, 30.0, 12, 2),
            report(EventKind::Ice, 60.0, 14, 3),
        ];
        let clusters = classify(&reports, &ClassifierConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn different_kinds_split() {
        let reports =
            vec![report(EventKind::Ice, 0.0, 10, 1), report(EventKind::Accident, 0.0, 10, 2)];
        let clusters = classify(&reports, &ClassifierConfig::default());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn distant_events_split() {
        let reports =
            vec![report(EventKind::Ice, 0.0, 10, 1), report(EventKind::Ice, 5000.0, 10, 2)];
        let clusters = classify(&reports, &ClassifierConfig::default());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn stale_reports_split_in_time() {
        let reports = vec![
            report(EventKind::Congestion, 0.0, 10, 1),
            report(EventKind::Congestion, 0.0, 500, 2),
        ];
        let clusters = classify(&reports, &ClassifierConfig::default());
        assert_eq!(clusters.len(), 2, "an hour-old congestion is a new event");
    }

    #[test]
    fn empty_input() {
        assert!(classify(&[], &ClassifierConfig::default()).is_empty());
    }

    #[test]
    fn deterministic_regardless_of_input_order() {
        let mut reports = vec![
            report(EventKind::Ice, 0.0, 10, 1),
            report(EventKind::Ice, 40.0, 11, 2),
            report(EventKind::Accident, 500.0, 12, 3),
            report(EventKind::Ice, 80.0, 13, 4),
        ];
        let a = classify(&reports, &ClassifierConfig::default());
        reports.reverse();
        let b = classify(&reports, &ClassifierConfig::default());
        assert_eq!(a.len(), b.len());
        let mut sizes_a: Vec<usize> = a.iter().map(|c| c.len()).collect();
        let mut sizes_b: Vec<usize> = b.iter().map(|c| c.len()).collect();
        sizes_a.sort();
        sizes_b.sort();
        assert_eq!(sizes_a, sizes_b);
    }

    #[test]
    fn drifting_centroid_still_bounded() {
        // A chain of reports each 100m apart: the first two group (within
        // 150m), but the chain cannot extend unboundedly because joining is
        // against the centroid.
        let reports: Vec<Report> =
            (0..6).map(|i| report(EventKind::Ice, i as f64 * 100.0, 10 + i, i)).collect();
        let clusters = classify(&reports, &ClassifierConfig::default());
        assert!(clusters.len() >= 2, "chain must eventually split, got {}", clusters.len());
    }
}
