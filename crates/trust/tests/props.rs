//! Property-based tests for trust validators and the classifier.

use vc_sim::geom::Point;
use vc_sim::node::VehicleId;
use vc_sim::rng::SimRng;
use vc_sim::time::SimTime;
use vc_testkit::prop::strategy::{any_bool, any_u64, from_fn, vec, FromFn};
use vc_testkit::{prop, prop_assert, prop_assert_eq};
use vc_trust::prelude::*;

fn report_strategy() -> FromFn<impl Fn(&mut SimRng) -> Report> {
    from_fn(|rng| {
        let reporter = rng.next_u64();
        let claim = rng.chance(0.5);
        let x = rng.range_f64(-100.0, 100.0);
        let y = rng.range_f64(-100.0, 100.0);
        let speed = rng.range_f64(0.0, 40.0);
        let path_len = rng.index(4);
        let path = (0..path_len).map(|_| VehicleId(rng.range_u64(0, 256) as u32)).collect();
        let t = rng.range_u64(0, 100);
        Report {
            reporter,
            kind: EventKind::Ice,
            location: Point::new(x, y),
            observed_at: SimTime::from_secs(t),
            claim,
            reporter_pos: Point::new(x + 10.0, y),
            reporter_speed: speed,
            path,
        }
    })
}

prop! {
    #![cases(128)]

    // Scores stay in [0,1] for every validator over arbitrary clusters and
    // arbitrary reputation histories.
    #[test]
    fn scores_bounded(
        reports in vec(report_strategy(), 0..30),
        history in vec((any_u64(), any_bool()), 0..50),
    ) {
        let mut rep = ReputationStore::new();
        for (who, ok) in history {
            rep.record(who, ok);
        }
        let cluster = EventCluster { reports };
        for v in all_validators() {
            let s = v.score(&cluster, &rep);
            prop_assert!((0.0..=1.0).contains(&s), "{} scored {}", v.name(), s);
            prop_assert!(s.is_finite());
        }
    }

    // Unanimous agreement from plausible reporters always wins every
    // validator's vote in the claimed direction.
    #[test]
    fn unanimity_decides(claim in any_bool(), n in 1usize..15) {
        let reports: Vec<Report> = (0..n as u64)
            .map(|r| Report {
                reporter: r,
                kind: EventKind::Accident,
                location: Point::new(0.0, 0.0),
                observed_at: SimTime::from_secs(1),
                claim,
                reporter_pos: Point::new(15.0, 0.0),
                reporter_speed: 10.0,
                path: vec![VehicleId(r as u32)],
            })
            .collect();
        let mut rep = ReputationStore::new();
        for r in 0..n as u64 {
            for _ in 0..3 {
                rep.record(r, true);
            }
        }
        let cluster = EventCluster { reports };
        for v in all_validators() {
            prop_assert_eq!(v.decide(&cluster, &rep), claim, "{} disagreed with unanimity", v.name());
        }
    }

    // Adding a confirming report from a fresh, plausible, path-independent
    // reporter never decreases the majority or weighted score: a positive
    // vote can only pull the mean up.
    #[test]
    fn confirmation_is_monotone_for_votes(base in vec(report_strategy(), 1..15), extra_id in 5000u64..6000) {
        let rep = ReputationStore::new();
        let cluster = EventCluster { reports: base.clone() };
        let maj_before = MajorityVote.score(&cluster, &rep);
        let w_before = WeightedVote.score(&cluster, &rep);
        let mut extended = base;
        extended.push(Report {
            reporter: extra_id,
            kind: EventKind::Ice,
            location: Point::new(0.0, 0.0),
            observed_at: SimTime::from_secs(1),
            claim: true,
            reporter_pos: Point::new(5.0, 0.0),
            reporter_speed: 10.0,
            path: vec![VehicleId(999_999)],
        });
        let cluster2 = EventCluster { reports: extended };
        prop_assert!(MajorityVote.score(&cluster2, &rep) + 1e-12 >= maj_before);
        prop_assert!(WeightedVote.score(&cluster2, &rep) + 1e-9 >= w_before);
    }

    // The classifier never merges different event kinds and never loses or
    // duplicates reports.
    #[test]
    fn classifier_partitions(reports in vec(report_strategy(), 0..40)) {
        let clusters = classify(&reports, &ClassifierConfig::default());
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, reports.len(), "reports lost or duplicated");
        for c in &clusters {
            prop_assert!(!c.is_empty());
            let kind = c.kind().unwrap();
            prop_assert!(c.reports.iter().all(|r| r.kind == kind));
        }
    }

    // Reputation: reliability is monotone in good outcomes and bounded.
    #[test]
    fn reputation_monotone(goods in 0u32..40, bads in 0u32..40) {
        let mut store = ReputationStore::new();
        for _ in 0..goods {
            store.record(1, true);
        }
        for _ in 0..bads {
            store.record(1, false);
        }
        let r = store.reliability(1);
        prop_assert!(r > 0.0 && r < 1.0);
        store.record(1, true);
        prop_assert!(store.reliability(1) >= r);
    }

    // Path overlap is a similarity: symmetric, bounded, reflexive-on-nonempty.
    #[test]
    fn path_overlap_is_similarity(a in report_strategy(), b in report_strategy()) {
        let ab = path_overlap(&a, &b);
        let ba = path_overlap(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        if !a.path.is_empty() {
            prop_assert_eq!(path_overlap(&a, &a), 1.0);
        }
    }
}
