//! Property-based tests for policies, audit chains, and enforcement.

use proptest::prelude::*;
use vc_access::audit::AuditLog;
use vc_access::policy::{Action, Context, Decision, Expr, Policy, Role};
use vc_auth::pseudonym::PseudonymId;
use vc_sim::geom::{Point, Rect};
use vc_sim::node::SaeLevel;
use vc_sim::time::SimTime;

fn role() -> impl Strategy<Value = Role> {
    prop_oneof![
        Just(Role::Member),
        Just(Role::Head),
        Just(Role::Storage),
        Just(Role::Sensor),
        Just(Role::Gateway),
    ]
}

fn sae() -> impl Strategy<Value = SaeLevel> {
    (0u8..=5).prop_map(|n| SaeLevel::from_u8(n).unwrap())
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![Just(Action::Read), Just(Action::Write), Just(Action::Compute), Just(Action::Delegate)]
}

fn context() -> impl Strategy<Value = Context> {
    (role(), 0.0f64..60.0, -500.0f64..500.0, -500.0f64..500.0, sae(), any::<bool>(), 0u64..10_000)
        .prop_map(|(role, speed, x, y, automation, emergency, t)| Context {
            role,
            speed,
            position: Point::new(x, y),
            automation,
            emergency,
            now: SimTime::from_secs(t),
        })
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::True),
        Just(Expr::False),
        role().prop_map(Expr::HasRole),
        (0.0f64..60.0).prop_map(Expr::SpeedBelow),
        sae().prop_map(Expr::AutomationAtLeast),
        Just(Expr::EmergencyActive),
        (0u64..10_000).prop_map(|t| Expr::Before(SimTime::from_secs(t))),
        (0u64..10_000).prop_map(|t| Expr::After(SimTime::from_secs(t))),
        (-500.0f64..0.0, -500.0f64..0.0, 0.0f64..500.0, 0.0f64..500.0).prop_map(|(x1, y1, x2, y2)| {
            Expr::WithinRegion(Rect::new(Point::new(x1, y1), Point::new(x2, y2)))
        }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| e.negate()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Boolean-algebra identities hold for every expression and context.
    #[test]
    fn expr_de_morgan(a in expr(), b in expr(), ctx in context()) {
        let lhs = a.clone().and(b.clone()).negate().eval(&ctx);
        let rhs = a.negate().or(b.negate()).eval(&ctx);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn expr_double_negation(a in expr(), ctx in context()) {
        prop_assert_eq!(a.clone().negate().negate().eval(&ctx), a.eval(&ctx));
    }

    // Adding rules never revokes a permit (policies are additive).
    #[test]
    fn policies_are_additive(base_expr in expr(), extra in expr(), act in action(), ctx in context()) {
        let small = Policy::new().allow(act, base_expr.clone());
        let big = Policy::new().allow(act, base_expr).allow(act, extra);
        if small.decide(act, &ctx).is_permit() {
            prop_assert!(big.decide(act, &ctx).is_permit());
        }
    }

    // Emergency escalations only ever ADD permissions, never remove them,
    // and only fire in emergency contexts.
    #[test]
    fn emergency_is_monotone(normal in expr(), escalation in expr(), act in action(), ctx in context()) {
        let plain = Policy::new().allow(act, normal.clone());
        let escalated = Policy::new().allow(act, normal).allow_in_emergency(act, escalation);
        let before = plain.decide(act, &ctx);
        let after = escalated.decide(act, &ctx);
        if before.is_permit() {
            prop_assert!(after.is_permit());
        }
        if !ctx.emergency {
            prop_assert_eq!(before, after, "escalations are inert outside emergencies");
        }
    }

    // Unlisted actions are always denied.
    #[test]
    fn default_deny_holds(e in expr(), ctx in context()) {
        let p = Policy::new().allow(Action::Read, e);
        prop_assert_eq!(p.decide(Action::Delegate, &ctx), Decision::Deny);
    }

    // The audit chain detects any single-field mutation of any record.
    #[test]
    fn audit_chain_detects_any_mutation(
        n in 2usize..20,
        victim in any::<u16>(),
        field in 0u8..3,
    ) {
        let mut log = AuditLog::new();
        for i in 0..n {
            log.append(
                SimTime::from_secs(i as u64),
                PseudonymId(i as u64),
                Action::Read,
                Decision::Permit,
            );
        }
        prop_assert!(log.verify(None));
        let head = log.head().unwrap();
        // Clone-and-mutate via serialization of fields we can reach: rebuild
        // a log with one record changed.
        let mut tampered = log.clone();
        let idx = victim as usize % n;
        // Mutate through the public records view is impossible; rebuild:
        let mut rebuilt = AuditLog::new();
        for (i, r) in tampered.records().iter().enumerate() {
            let (who, action, decision) = if i == idx {
                match field {
                    0 => (PseudonymId(r.who.0 ^ 1), r.action, r.decision),
                    1 => (r.who, Action::Write, r.decision),
                    _ => (r.who, r.action, Decision::Deny),
                }
            } else {
                (r.who, r.action, r.decision)
            };
            rebuilt.append(r.at, who, action, decision);
        }
        tampered = rebuilt;
        // The rebuilt chain is internally consistent but its head differs.
        prop_assert!(tampered.verify(None));
        prop_assert!(!tampered.verify(Some(&head)), "mutation must change the head");
    }
}
