//! Property-based tests for policies, audit chains, and enforcement.

use vc_access::audit::AuditLog;
use vc_access::policy::{Action, Context, Decision, Expr, Policy, Role};
use vc_auth::pseudonym::PseudonymId;
use vc_sim::geom::{Point, Rect};
use vc_sim::node::SaeLevel;
use vc_sim::rng::SimRng;
use vc_sim::time::SimTime;
use vc_testkit::prop::strategy::{any_u16, from_fn, FromFn};
use vc_testkit::{prop, prop_assert, prop_assert_eq};

const ROLES: [Role; 5] = [Role::Member, Role::Head, Role::Storage, Role::Sensor, Role::Gateway];
const ACTIONS: [Action; 4] = [Action::Read, Action::Write, Action::Compute, Action::Delegate];

fn gen_sae(rng: &mut SimRng) -> SaeLevel {
    SaeLevel::from_u8(rng.range_u64(0, 6) as u8).unwrap()
}

fn context() -> FromFn<impl Fn(&mut SimRng) -> Context> {
    from_fn(|rng| Context {
        role: ROLES[rng.index(ROLES.len())],
        speed: rng.range_f64(0.0, 60.0),
        position: Point::new(rng.range_f64(-500.0, 500.0), rng.range_f64(-500.0, 500.0)),
        automation: gen_sae(rng),
        emergency: rng.chance(0.5),
        now: SimTime::from_secs(rng.range_u64(0, 10_000)),
    })
}

fn action() -> FromFn<impl Fn(&mut SimRng) -> Action> {
    from_fn(|rng| ACTIONS[rng.index(ACTIONS.len())])
}

fn gen_leaf(rng: &mut SimRng) -> Expr {
    match rng.index(9) {
        0 => Expr::True,
        1 => Expr::False,
        2 => Expr::HasRole(ROLES[rng.index(ROLES.len())]),
        3 => Expr::SpeedBelow(rng.range_f64(0.0, 60.0)),
        4 => Expr::AutomationAtLeast(gen_sae(rng)),
        5 => Expr::EmergencyActive,
        6 => Expr::Before(SimTime::from_secs(rng.range_u64(0, 10_000))),
        7 => Expr::After(SimTime::from_secs(rng.range_u64(0, 10_000))),
        _ => Expr::WithinRegion(Rect::new(
            Point::new(rng.range_f64(-500.0, 0.0), rng.range_f64(-500.0, 0.0)),
            Point::new(rng.range_f64(0.0, 500.0), rng.range_f64(0.0, 500.0)),
        )),
    }
}

fn gen_expr(rng: &mut SimRng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(0.4) {
        return gen_leaf(rng);
    }
    match rng.index(3) {
        0 => gen_expr(rng, depth - 1).and(gen_expr(rng, depth - 1)),
        1 => gen_expr(rng, depth - 1).or(gen_expr(rng, depth - 1)),
        _ => gen_expr(rng, depth - 1).negate(),
    }
}

fn expr() -> FromFn<impl Fn(&mut SimRng) -> Expr> {
    from_fn(|rng| gen_expr(rng, 3))
}

prop! {
    #![cases(128)]

    // Boolean-algebra identities hold for every expression and context.
    #[test]
    fn expr_de_morgan(a in expr(), b in expr(), ctx in context()) {
        let lhs = a.clone().and(b.clone()).negate().eval(&ctx);
        let rhs = a.negate().or(b.negate()).eval(&ctx);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn expr_double_negation(a in expr(), ctx in context()) {
        prop_assert_eq!(a.clone().negate().negate().eval(&ctx), a.eval(&ctx));
    }

    // Adding rules never revokes a permit (policies are additive).
    #[test]
    fn policies_are_additive(base_expr in expr(), extra in expr(), act in action(), ctx in context()) {
        let small = Policy::new().allow(act, base_expr.clone());
        let big = Policy::new().allow(act, base_expr).allow(act, extra);
        if small.decide(act, &ctx).is_permit() {
            prop_assert!(big.decide(act, &ctx).is_permit());
        }
    }

    // Emergency escalations only ever ADD permissions, never remove them,
    // and only fire in emergency contexts.
    #[test]
    fn emergency_is_monotone(normal in expr(), escalation in expr(), act in action(), ctx in context()) {
        let plain = Policy::new().allow(act, normal.clone());
        let escalated = Policy::new().allow(act, normal).allow_in_emergency(act, escalation);
        let before = plain.decide(act, &ctx);
        let after = escalated.decide(act, &ctx);
        if before.is_permit() {
            prop_assert!(after.is_permit());
        }
        if !ctx.emergency {
            prop_assert_eq!(before, after, "escalations are inert outside emergencies");
        }
    }

    // Unlisted actions are always denied.
    #[test]
    fn default_deny_holds(e in expr(), ctx in context()) {
        let p = Policy::new().allow(Action::Read, e);
        prop_assert_eq!(p.decide(Action::Delegate, &ctx), Decision::Deny);
    }

    // The audit chain detects any single-field mutation of any record.
    #[test]
    fn audit_chain_detects_any_mutation(
        n in 2usize..20,
        victim in any_u16(),
        field in 0u8..3,
    ) {
        let mut log = AuditLog::new();
        for i in 0..n {
            log.append(
                SimTime::from_secs(i as u64),
                PseudonymId(i as u64),
                Action::Read,
                Decision::Permit,
            );
        }
        prop_assert!(log.verify(None));
        let head = log.head().unwrap();
        // Clone-and-mutate via serialization of fields we can reach: rebuild
        // a log with one record changed.
        let mut tampered = log.clone();
        let idx = victim as usize % n;
        // Mutate through the public records view is impossible; rebuild:
        let mut rebuilt = AuditLog::new();
        for (i, r) in tampered.records().iter().enumerate() {
            let (who, action, decision) = if i == idx {
                match field {
                    0 => (PseudonymId(r.who.0 ^ 1), r.action, r.decision),
                    1 => (r.who, Action::Write, r.decision),
                    _ => (r.who, r.action, Decision::Deny),
                }
            } else {
                (r.who, r.action, r.decision)
            };
            rebuilt.append(r.at, who, action, decision);
        }
        tampered = rebuilt;
        // The rebuilt chain is internally consistent but its head differs.
        prop_assert!(tampered.verify(None));
        prop_assert!(!tampered.verify(Some(&head)), "mutation must change the head");
    }
}
