//! The access-control policy language.
//!
//! Policies in v-clouds must be evaluated against *context* — role in the
//! current group, kinematics, automation level, emergency state — rather
//! than identity (paper §III-C). This module gives policies as boolean
//! expression trees over typed atoms, with explicit emergency-escalation
//! semantics: a policy can declare additional grants that apply only in
//! emergency context, which is how "additional permissions … should be
//! granted … in milliseconds" (§III-C) is realized — escalation is a
//! context-bit flip, not a re-negotiation.

use vc_sim::geom::{Point, Rect};
use vc_sim::node::SaeLevel;
use vc_sim::time::SimTime;

/// Roles a vehicle can hold inside a v-cloud group (paper §III-A: "different
/// vehicles … may serve as different roles for different applications").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Ordinary member lending resources.
    Member,
    /// Elected group head / broker.
    Head,
    /// Storage/buffering node.
    Storage,
    /// Sensing data provider.
    Sensor,
    /// Gateway to infrastructure.
    Gateway,
}

/// Actions a subject may request on a protected object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Read the data.
    Read,
    /// Append/modify.
    Write,
    /// Execute a computation over the data.
    Compute,
    /// Re-share with further vehicles.
    Delegate,
}

/// The evaluation context: everything about the requester and environment
/// that policies may reference. No identities — only attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// The requester's current role in the group.
    pub role: Role,
    /// The requester's speed, m/s.
    pub speed: f64,
    /// The requester's position.
    pub position: Point,
    /// The requester's SAE automation level.
    pub automation: SaeLevel,
    /// Whether the cloud is in emergency mode.
    pub emergency: bool,
    /// Evaluation time.
    pub now: SimTime,
}

impl Context {
    /// A plain member context useful as a starting point in tests/examples.
    pub fn member_at(position: Point, now: SimTime) -> Context {
        Context {
            role: Role::Member,
            speed: 0.0,
            position,
            automation: SaeLevel::L3,
            emergency: false,
            now,
        }
    }
}

/// A boolean expression over context atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Requester holds exactly this role.
    HasRole(Role),
    /// Requester's speed is below the bound (m/s).
    SpeedBelow(f64),
    /// Requester's automation level is at least this.
    AutomationAtLeast(SaeLevel),
    /// Requester is inside the region.
    WithinRegion(Rect),
    /// Cloud is in emergency mode.
    EmergencyActive,
    /// Valid only before this instant.
    Before(SimTime),
    /// Valid only at/after this instant.
    After(SimTime),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Evaluates against a context.
    pub fn eval(&self, ctx: &Context) -> bool {
        match self {
            Expr::True => true,
            Expr::False => false,
            Expr::HasRole(r) => ctx.role == *r,
            Expr::SpeedBelow(v) => ctx.speed < *v,
            Expr::AutomationAtLeast(l) => ctx.automation >= *l,
            Expr::WithinRegion(r) => r.contains(ctx.position),
            Expr::EmergencyActive => ctx.emergency,
            Expr::Before(t) => ctx.now < *t,
            Expr::After(t) => ctx.now >= *t,
            Expr::And(a, b) => a.eval(ctx) && b.eval(ctx),
            Expr::Or(a, b) => a.eval(ctx) || b.eval(ctx),
            Expr::Not(e) => !e.eval(ctx),
        }
    }

    /// `a AND b` convenience.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` convenience.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT a` convenience.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Number of nodes (policy complexity; drives evaluation-cost benches).
    pub fn size(&self) -> usize {
        match self {
            Expr::And(a, b) | Expr::Or(a, b) => 1 + a.size() + b.size(),
            Expr::Not(e) => 1 + e.size(),
            _ => 1,
        }
    }
}

/// A decision with its reason, for audit trails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Granted under the normal rule.
    Permit,
    /// Granted only because emergency escalation applied.
    PermitEmergency,
    /// Denied.
    Deny,
}

impl Decision {
    /// `true` for either permit variant.
    pub fn is_permit(self) -> bool {
        matches!(self, Decision::Permit | Decision::PermitEmergency)
    }
}

/// A policy: per-action rules plus optional emergency escalations.
/// Unlisted actions are denied (default-deny).
#[derive(Debug, Clone, Default)]
pub struct Policy {
    rules: Vec<(Action, Expr)>,
    emergency_rules: Vec<(Action, Expr)>,
}

impl Policy {
    /// An empty, deny-everything policy.
    pub fn new() -> Policy {
        Policy::default()
    }

    /// Adds a normal rule: `action` allowed when `expr` holds.
    pub fn allow(mut self, action: Action, expr: Expr) -> Policy {
        self.rules.push((action, expr));
        self
    }

    /// Adds an emergency escalation: `action` additionally allowed when the
    /// context is in emergency mode and `expr` holds.
    pub fn allow_in_emergency(mut self, action: Action, expr: Expr) -> Policy {
        self.emergency_rules.push((action, expr));
        self
    }

    /// Evaluates a request.
    pub fn decide(&self, action: Action, ctx: &Context) -> Decision {
        for (a, expr) in &self.rules {
            if *a == action && expr.eval(ctx) {
                return Decision::Permit;
            }
        }
        if ctx.emergency {
            for (a, expr) in &self.emergency_rules {
                if *a == action && expr.eval(ctx) {
                    return Decision::PermitEmergency;
                }
            }
        }
        Decision::Deny
    }

    /// Total rule count.
    pub fn rule_count(&self) -> usize {
        self.rules.len() + self.emergency_rules.len()
    }

    /// Total expression complexity (sum of node counts).
    pub fn complexity(&self) -> usize {
        self.rules.iter().chain(&self.emergency_rules).map(|(_, e)| e.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context {
            role: Role::Member,
            speed: 10.0,
            position: Point::new(50.0, 50.0),
            automation: SaeLevel::L3,
            emergency: false,
            now: SimTime::from_secs(100),
        }
    }

    #[test]
    fn atoms_evaluate() {
        let c = ctx();
        assert!(Expr::True.eval(&c));
        assert!(!Expr::False.eval(&c));
        assert!(Expr::HasRole(Role::Member).eval(&c));
        assert!(!Expr::HasRole(Role::Head).eval(&c));
        assert!(Expr::SpeedBelow(11.0).eval(&c));
        assert!(!Expr::SpeedBelow(10.0).eval(&c));
        assert!(Expr::AutomationAtLeast(SaeLevel::L3).eval(&c));
        assert!(!Expr::AutomationAtLeast(SaeLevel::L4).eval(&c));
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        assert!(Expr::WithinRegion(region).eval(&c));
        assert!(!Expr::EmergencyActive.eval(&c));
        assert!(Expr::Before(SimTime::from_secs(200)).eval(&c));
        assert!(!Expr::Before(SimTime::from_secs(100)).eval(&c));
        assert!(Expr::After(SimTime::from_secs(100)).eval(&c));
    }

    #[test]
    fn combinators() {
        let c = ctx();
        assert!(Expr::True.and(Expr::HasRole(Role::Member)).eval(&c));
        assert!(!Expr::False.and(Expr::True).eval(&c));
        assert!(Expr::False.or(Expr::True).eval(&c));
        assert!(Expr::False.negate().eval(&c));
        let nested = Expr::HasRole(Role::Head)
            .or(Expr::SpeedBelow(20.0).and(Expr::AutomationAtLeast(SaeLevel::L2)));
        assert!(nested.eval(&c));
        assert_eq!(nested.size(), 5);
    }

    #[test]
    fn default_deny() {
        let p = Policy::new();
        assert_eq!(p.decide(Action::Read, &ctx()), Decision::Deny);
    }

    #[test]
    fn first_matching_rule_permits() {
        let p = Policy::new()
            .allow(Action::Read, Expr::HasRole(Role::Head))
            .allow(Action::Read, Expr::SpeedBelow(50.0));
        assert_eq!(p.decide(Action::Read, &ctx()), Decision::Permit);
        assert_eq!(p.decide(Action::Write, &ctx()), Decision::Deny);
    }

    #[test]
    fn emergency_escalation_only_in_emergency() {
        let p = Policy::new()
            .allow(Action::Read, Expr::HasRole(Role::Head))
            .allow_in_emergency(Action::Read, Expr::True);
        let normal = ctx();
        assert_eq!(p.decide(Action::Read, &normal), Decision::Deny);
        let mut crisis = ctx();
        crisis.emergency = true;
        assert_eq!(p.decide(Action::Read, &crisis), Decision::PermitEmergency);
        assert!(Decision::PermitEmergency.is_permit());
    }

    #[test]
    fn normal_rule_wins_over_emergency_label() {
        let p = Policy::new()
            .allow(Action::Read, Expr::True)
            .allow_in_emergency(Action::Read, Expr::True);
        let mut crisis = ctx();
        crisis.emergency = true;
        assert_eq!(p.decide(Action::Read, &crisis), Decision::Permit);
    }

    #[test]
    fn role_and_region_policy() {
        // "Storage nodes may write only inside the staging area."
        let staging = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let p = Policy::new()
            .allow(Action::Write, Expr::HasRole(Role::Storage).and(Expr::WithinRegion(staging)));
        let mut c = ctx();
        c.role = Role::Storage;
        assert_eq!(p.decide(Action::Write, &c), Decision::Deny, "outside region");
        c.position = Point::new(5.0, 5.0);
        assert_eq!(p.decide(Action::Write, &c), Decision::Permit);
        c.role = Role::Member;
        assert_eq!(p.decide(Action::Write, &c), Decision::Deny, "wrong role");
    }

    #[test]
    fn complexity_accounting() {
        let p = Policy::new()
            .allow(Action::Read, Expr::True.and(Expr::False))
            .allow_in_emergency(Action::Write, Expr::True);
        assert_eq!(p.rule_count(), 2);
        assert_eq!(p.complexity(), 4);
    }
}
