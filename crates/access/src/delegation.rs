//! Delegation chains: controlled re-sharing of package access
//! (paper §V-C — the data owner must control "which vehicles are allowed to
//! perform what actions", including when data is passed onward).
//!
//! [`Action::Delegate`] in a policy says a grantee may re-share; this module
//! is the mechanism: a signed chain of grants, each link signed by the
//! previous holder, with monotonically *narrowing* actions, a depth bound
//! set by the owner, and per-link expiry. Verifiers walk the chain with only
//! the owner's public key.

use crate::policy::Action;
use vc_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use vc_sim::time::SimTime;

/// One link: "the holder of `grantee` may perform `actions` on package
/// `package_id` until `expires_at`".
#[derive(Debug, Clone, PartialEq)]
pub struct DelegationGrant {
    /// The package being shared.
    pub package_id: u64,
    /// The grantee's (pseudonym) key.
    pub grantee: VerifyingKey,
    /// Actions granted (must be a subset of the grantor's own).
    pub actions: Vec<Action>,
    /// Remaining re-delegation depth after this link (0 = leaf).
    pub depth_remaining: u8,
    /// Link expiry.
    pub expires_at: SimTime,
    /// Signature by the grantor (the owner for the first link, the previous
    /// grantee afterwards).
    pub signature: Signature,
}

impl DelegationGrant {
    fn signed_bytes(
        package_id: u64,
        grantee: &VerifyingKey,
        actions: &[Action],
        depth_remaining: u8,
        expires_at: SimTime,
    ) -> Vec<u8> {
        let mut out = b"vc-delegation".to_vec();
        out.extend_from_slice(&package_id.to_be_bytes());
        out.extend_from_slice(&grantee.to_bytes());
        for a in actions {
            out.push(match a {
                Action::Read => 0,
                Action::Write => 1,
                Action::Compute => 2,
                Action::Delegate => 3,
            });
        }
        out.push(0xFF);
        out.push(depth_remaining);
        out.extend_from_slice(&expires_at.as_micros().to_be_bytes());
        out
    }
}

/// A chain of grants from the owner down to the final holder.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DelegationChain {
    /// Links, owner-issued first.
    pub grants: Vec<DelegationGrant>,
}

/// Why a chain failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationError {
    /// The chain has no links.
    Empty,
    /// A link's signature does not verify against its grantor.
    BadSignature,
    /// A link grants an action its grantor did not hold.
    ActionEscalation,
    /// The chain exceeds the owner's depth bound.
    DepthExceeded,
    /// A link is expired.
    Expired,
    /// A link references the wrong package.
    WrongPackage,
}

impl std::fmt::Display for DelegationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DelegationError::Empty => "empty delegation chain",
            DelegationError::BadSignature => "delegation link signature invalid",
            DelegationError::ActionEscalation => "delegation widens actions",
            DelegationError::DepthExceeded => "delegation depth exceeded",
            DelegationError::Expired => "delegation link expired",
            DelegationError::WrongPackage => "delegation for a different package",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DelegationError {}

/// Issues a grant as `grantor` (the owner, or a prior grantee holding the
/// Delegate right).
pub fn grant(
    grantor: &SigningKey,
    package_id: u64,
    grantee: VerifyingKey,
    actions: Vec<Action>,
    depth_remaining: u8,
    expires_at: SimTime,
) -> DelegationGrant {
    let body =
        DelegationGrant::signed_bytes(package_id, &grantee, &actions, depth_remaining, expires_at);
    DelegationGrant {
        package_id,
        grantee,
        actions,
        depth_remaining,
        expires_at,
        signature: grantor.sign(&body),
    }
}

/// Verifies a chain: returns the actions the *final* grantee holds for
/// `package_id` at `now`, after all narrowing.
///
/// # Errors
///
/// The first [`DelegationError`] encountered walking owner → leaf.
pub fn verify_chain(
    chain: &DelegationChain,
    owner: &VerifyingKey,
    package_id: u64,
    now: SimTime,
) -> Result<Vec<Action>, DelegationError> {
    if chain.grants.is_empty() {
        return Err(DelegationError::Empty);
    }
    let mut grantor_key = *owner;
    // The owner implicitly holds every action.
    let mut held: Vec<Action> =
        vec![Action::Read, Action::Write, Action::Compute, Action::Delegate];
    let mut allowed_depth: Option<u8> = None;
    for link in &chain.grants {
        if link.package_id != package_id {
            return Err(DelegationError::WrongPackage);
        }
        if now > link.expires_at {
            return Err(DelegationError::Expired);
        }
        // Depth: the owner's first link sets the budget; every later link
        // must strictly decrease it.
        match allowed_depth {
            None => allowed_depth = Some(link.depth_remaining),
            Some(prev) => {
                if prev == 0 || link.depth_remaining >= prev {
                    return Err(DelegationError::DepthExceeded);
                }
                allowed_depth = Some(link.depth_remaining);
            }
        }
        // Non-leaf links require the grantor to hold Delegate; actions only
        // narrow.
        if !link.actions.iter().all(|a| held.contains(a)) {
            return Err(DelegationError::ActionEscalation);
        }
        let body = DelegationGrant::signed_bytes(
            link.package_id,
            &link.grantee,
            &link.actions,
            link.depth_remaining,
            link.expires_at,
        );
        if !grantor_key.verify(&body, &link.signature) {
            return Err(DelegationError::BadSignature);
        }
        // Advance: the grantee becomes the next grantor; it holds only the
        // granted actions, and may extend the chain only if it got Delegate.
        held = link.actions.clone();
        grantor_key = link.grantee;
    }
    // Trailing links beyond a grantor without Delegate are caught above via
    // ActionEscalation (Delegate missing from `held` means the next link's
    // existence required an action the grantor did not hold). Make it
    // explicit: a chain whose non-final link lacks Delegate is invalid.
    for link in &chain.grants[..chain.grants.len() - 1] {
        if !link.actions.contains(&Action::Delegate) {
            return Err(DelegationError::ActionEscalation);
        }
    }
    Ok(held)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (SigningKey, SigningKey, SigningKey) {
        (
            SigningKey::from_seed(b"owner"),
            SigningKey::from_seed(b"alice"),
            SigningKey::from_seed(b"bob"),
        )
    }

    fn far() -> SimTime {
        SimTime::from_secs(10_000)
    }

    #[test]
    fn single_grant_verifies() {
        let (owner, alice, _) = keys();
        let g = grant(&owner, 7, alice.verifying_key(), vec![Action::Read], 2, far());
        let chain = DelegationChain { grants: vec![g] };
        let actions =
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)).unwrap();
        assert_eq!(actions, vec![Action::Read]);
    }

    #[test]
    fn two_hop_chain_narrows() {
        let (owner, alice, bob) = keys();
        let g1 = grant(
            &owner,
            7,
            alice.verifying_key(),
            vec![Action::Read, Action::Compute, Action::Delegate],
            2,
            far(),
        );
        let g2 = grant(&alice, 7, bob.verifying_key(), vec![Action::Read], 1, far());
        let chain = DelegationChain { grants: vec![g1, g2] };
        let actions =
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)).unwrap();
        assert_eq!(actions, vec![Action::Read], "bob holds only what alice passed");
    }

    #[test]
    fn action_escalation_rejected() {
        let (owner, alice, bob) = keys();
        let g1 =
            grant(&owner, 7, alice.verifying_key(), vec![Action::Read, Action::Delegate], 2, far());
        // Alice tries to grant Write, which she never held.
        let g2 = grant(&alice, 7, bob.verifying_key(), vec![Action::Write], 1, far());
        let chain = DelegationChain { grants: vec![g1, g2] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::ActionEscalation)
        );
    }

    #[test]
    fn delegation_without_delegate_right_rejected() {
        let (owner, alice, bob) = keys();
        // Alice got Read only (no Delegate) but tries to extend the chain.
        let g1 = grant(&owner, 7, alice.verifying_key(), vec![Action::Read], 2, far());
        let g2 = grant(&alice, 7, bob.verifying_key(), vec![Action::Read], 1, far());
        let chain = DelegationChain { grants: vec![g1, g2] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::ActionEscalation)
        );
    }

    #[test]
    fn depth_budget_enforced() {
        let (owner, alice, bob) = keys();
        let carol = SigningKey::from_seed(b"carol");
        let g1 =
            grant(&owner, 7, alice.verifying_key(), vec![Action::Read, Action::Delegate], 1, far());
        let g2 =
            grant(&alice, 7, bob.verifying_key(), vec![Action::Read, Action::Delegate], 0, far());
        let g3 = grant(&bob, 7, carol.verifying_key(), vec![Action::Read], 0, far());
        let chain = DelegationChain { grants: vec![g1, g2, g3] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::DepthExceeded)
        );
    }

    #[test]
    fn non_decreasing_depth_rejected() {
        let (owner, alice, bob) = keys();
        let g1 =
            grant(&owner, 7, alice.verifying_key(), vec![Action::Read, Action::Delegate], 1, far());
        // Alice claims MORE depth than she was given.
        let g2 = grant(&alice, 7, bob.verifying_key(), vec![Action::Read], 5, far());
        let chain = DelegationChain { grants: vec![g1, g2] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::DepthExceeded)
        );
    }

    #[test]
    fn expired_link_rejected() {
        let (owner, alice, _) = keys();
        let g =
            grant(&owner, 7, alice.verifying_key(), vec![Action::Read], 1, SimTime::from_secs(5));
        let chain = DelegationChain { grants: vec![g] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(6)),
            Err(DelegationError::Expired)
        );
    }

    #[test]
    fn forged_first_link_rejected() {
        let (owner, alice, _) = keys();
        let mallory = SigningKey::from_seed(b"mallory");
        // Mallory signs a grant pretending to be the owner.
        let g = grant(&mallory, 7, alice.verifying_key(), vec![Action::Read], 1, far());
        let chain = DelegationChain { grants: vec![g] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::BadSignature)
        );
    }

    #[test]
    fn wrong_package_and_empty_rejected() {
        let (owner, alice, _) = keys();
        let g = grant(&owner, 8, alice.verifying_key(), vec![Action::Read], 1, far());
        let chain = DelegationChain { grants: vec![g] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::WrongPackage)
        );
        assert_eq!(
            verify_chain(
                &DelegationChain::default(),
                &owner.verifying_key(),
                7,
                SimTime::from_secs(1)
            ),
            Err(DelegationError::Empty)
        );
    }

    #[test]
    fn tampered_actions_rejected() {
        let (owner, alice, _) = keys();
        let mut g = grant(&owner, 7, alice.verifying_key(), vec![Action::Read], 1, far());
        g.actions.push(Action::Write);
        let chain = DelegationChain { grants: vec![g] };
        assert_eq!(
            verify_chain(&chain, &owner.verifying_key(), 7, SimTime::from_secs(1)),
            Err(DelegationError::BadSignature)
        );
    }
}
