//! Data-policy packages ("sticky policies", paper §V-C).
//!
//! The paper's answer to "a fundamentally new access control mechanism that
//! can travel with data and enforce access control policies anywhere the
//! data goes" (§III): the owner seals the payload and couples it to its
//! policy in one package. The package key is sealed to the fleet's
//! **tamper-proof device (TPD)** enforcement key — TPDs are the standard
//! VANET trust anchor the paper's citations assume ([30], [21]). A TPD
//! releases plaintext only after (1) verifying an anonymous attribute
//! credential, (2) evaluating the policy against the certified attributes
//! and ambient context, and (3) appending a hash-chained audit record —
//! whatever vehicle happens to be holding the package.

use crate::audit::AuditLog;
use crate::credential::{verify_possession, PossessionProof};
use crate::policy::{Action, Context, Policy};
use vc_auth::pseudonym::PseudonymId;
use vc_crypto::chacha20::{open as aead_open, seal as aead_seal};
use vc_crypto::dh::{EphemeralSecret, PublicShare};
use vc_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use vc_crypto::sha256::{sha256_parts, Digest};
use vc_sim::time::SimTime;

/// Errors from the enforcement path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The attribute proof failed verification.
    BadProof,
    /// The policy denied the request.
    Denied,
    /// The package failed integrity checks.
    Corrupt,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessError::BadProof => "attribute proof invalid",
            AccessError::Denied => "policy denied the request",
            AccessError::Corrupt => "package integrity check failed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AccessError {}

/// A self-protecting data package: encrypted payload + policy + audit log.
#[derive(Debug, Clone)]
pub struct DataPackage {
    /// Package identifier.
    pub id: u64,
    /// The policy that travels with the data.
    pub policy: Policy,
    /// The sealed payload (ChaCha20 + MAC).
    ciphertext: Vec<u8>,
    /// Ephemeral share the TPD uses to re-derive the package key.
    key_share: [u8; 32],
    /// Owner signature over `(id, policy digest, ciphertext digest)`.
    owner_signature: Signature,
    /// Owner's public key (pseudonymous).
    owner_key: VerifyingKey,
    /// The tamper-evident access log.
    pub audit: AuditLog,
}

fn policy_digest(policy: &Policy) -> Digest {
    // Policies are built from plain data with a deterministic Debug form;
    // hashing it yields a canonical commitment without a wire format.
    sha256_parts(&[b"vc-policy", format!("{policy:?}").as_bytes()])
}

fn package_commitment(id: u64, policy: &Policy, ciphertext: &[u8]) -> Vec<u8> {
    let mut out = id.to_be_bytes().to_vec();
    out.extend_from_slice(&policy_digest(policy));
    out.extend_from_slice(&sha256_parts(&[b"vc-package-ct", ciphertext]));
    out
}

impl DataPackage {
    /// Seals `payload` under `policy`, owned by the holder of `owner_key`,
    /// openable only through TPDs of the given fleet.
    ///
    /// `entropy` seeds the package key (pass RNG output).
    pub fn seal_new(
        id: u64,
        payload: &[u8],
        policy: Policy,
        owner_key: &SigningKey,
        tpd_fleet: &PublicShare,
        entropy: u64,
    ) -> DataPackage {
        // Derive a fresh package key and seal the payload.
        let mut seed = id.to_be_bytes().to_vec();
        seed.extend_from_slice(&entropy.to_be_bytes());
        seed.extend_from_slice(&owner_key.verifying_key().to_bytes());
        let eph = EphemeralSecret::from_seed(&seed);
        let package_key = eph.agree(tpd_fleet, b"vc-package-key");
        // The TPD re-derives package_key from the ephemeral public share,
        // which is the "sealed key" transported with the package.
        let ciphertext = aead_seal(&package_key.0, &[0u8; 12], payload);
        let commitment = package_commitment(id, &policy, &ciphertext);
        let owner_signature = owner_key.sign(&commitment);
        DataPackage {
            id,
            policy,
            ciphertext,
            key_share: eph.public_share().to_bytes(),
            owner_signature,
            owner_key: owner_key.verifying_key(),
            audit: AuditLog::new(),
        }
    }

    /// Verifies the owner's signature binding data to policy — any holder
    /// can check a package was not re-wrapped under a weaker policy.
    pub fn verify_binding(&self) -> bool {
        let commitment = package_commitment(self.id, &self.policy, &self.ciphertext);
        self.owner_key.verify(&commitment, &self.owner_signature)
    }

    /// Ciphertext size in bytes (for replication cost accounting).
    pub fn ciphertext_len(&self) -> usize {
        self.ciphertext.len()
    }
}

/// The fleet's tamper-proof enforcement device class.
#[derive(Debug)]
pub struct TpdEnforcer {
    secret: EphemeralSecret,
}

impl TpdEnforcer {
    /// Creates the fleet TPD keypair from seed material (installed at
    /// manufacture).
    pub fn new(seed: &[u8]) -> Self {
        TpdEnforcer { secret: EphemeralSecret::from_seed(seed) }
    }

    /// The public enforcement key owners seal packages to.
    pub fn public_share(&self) -> PublicShare {
        self.secret.public_share()
    }

    /// The full enforcement path: proof → policy → audit → plaintext.
    ///
    /// The context's `role` and `automation` are **overridden by the
    /// certified attributes** — self-claimed context can't escalate.
    ///
    /// # Errors
    ///
    /// [`AccessError::BadProof`] on a failed credential proof,
    /// [`AccessError::Denied`] when the policy denies (a denial is still
    /// audited), [`AccessError::Corrupt`] when package integrity fails.
    pub fn request_access(
        &self,
        package: &mut DataPackage,
        action: Action,
        proof: &PossessionProof,
        issuer_key: &VerifyingKey,
        ambient: &Context,
        who: PseudonymId,
    ) -> Result<Vec<u8>, AccessError> {
        if !package.verify_binding() {
            return Err(AccessError::Corrupt);
        }
        // Challenge binds the proof to this package and time (no proof
        // replay across packages).
        let challenge = challenge_bytes(package.id, ambient.now);
        let attributes = verify_possession(proof, issuer_key, &challenge, ambient.now)
            .ok_or(AccessError::BadProof)?;
        // Effective context: certified attributes override self-claims.
        let mut ctx = ambient.clone();
        ctx.role = attributes.role;
        ctx.automation = attributes.automation;
        let decision = package.policy.decide(action, &ctx);
        package.audit.append(ctx.now, who, action, decision);
        if !decision.is_permit() {
            return Err(AccessError::Denied);
        }
        // Unseal: re-derive the package key from the stored share.
        let share = PublicShare::from_bytes(&package.key_share).ok_or(AccessError::Corrupt)?;
        let key = self.secret.agree(&share, b"vc-package-key");
        aead_open(&key.0, &[0u8; 12], &package.ciphertext).ok_or(AccessError::Corrupt)
    }
}

/// The challenge a subject must sign to access a package at a given time.
pub fn challenge_bytes(package_id: u64, now: SimTime) -> Vec<u8> {
    let mut out = b"vc-package-access".to_vec();
    out.extend_from_slice(&package_id.to_be_bytes());
    out.extend_from_slice(&now.as_micros().to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credential::{prove_possession, AttributeIssuer, Attributes};
    use crate::policy::{Decision, Expr, Role};
    use vc_sim::geom::Point;
    use vc_sim::node::SaeLevel;

    struct Setup {
        tpd: TpdEnforcer,
        issuer: AttributeIssuer,
        subject_key: SigningKey,
        package: DataPackage,
    }

    fn setup_with_policy(policy: Policy, attrs: Attributes) -> (Setup, PossessionProof, Context) {
        let tpd = TpdEnforcer::new(b"fleet-tpd");
        let issuer = AttributeIssuer::new(b"issuer");
        let owner = SigningKey::from_seed(b"owner");
        let subject_key = SigningKey::from_seed(b"subject");
        let cred = issuer.issue(attrs, subject_key.verifying_key(), SimTime::from_secs(10_000));
        let package =
            DataPackage::seal_new(7, b"sensor archive", policy, &owner, &tpd.public_share(), 99);
        let now = SimTime::from_secs(50);
        let proof = prove_possession(&cred, &subject_key, &challenge_bytes(7, now));
        let ctx = Context::member_at(Point::new(0.0, 0.0), now);
        (Setup { tpd, issuer, subject_key, package }, proof, ctx)
    }

    fn storage_attrs() -> Attributes {
        Attributes {
            role: Role::Storage,
            automation: SaeLevel::L4,
            storage_provider: true,
            compute_provider: true,
        }
    }

    #[test]
    fn grant_path_returns_plaintext_and_audits() {
        let policy = Policy::new().allow(Action::Read, Expr::HasRole(Role::Storage));
        let (mut s, proof, ctx) = setup_with_policy(policy, storage_attrs());
        let out = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap();
        assert_eq!(out, b"sensor archive");
        assert_eq!(s.package.audit.len(), 1);
        assert!(s.package.audit.verify(None));
        assert_eq!(s.package.audit.records()[0].decision, Decision::Permit);
    }

    #[test]
    fn deny_path_audits_too() {
        let policy = Policy::new().allow(Action::Read, Expr::HasRole(Role::Head));
        let (mut s, proof, ctx) = setup_with_policy(policy, storage_attrs());
        let err = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::Denied);
        assert_eq!(s.package.audit.len(), 1, "denial still logged");
        assert_eq!(s.package.audit.records()[0].decision, Decision::Deny);
    }

    #[test]
    fn self_claimed_role_cannot_escalate() {
        // Policy wants Head; the credential certifies Storage; claiming Head
        // in ambient context must not help.
        let policy = Policy::new().allow(Action::Read, Expr::HasRole(Role::Head));
        let (mut s, proof, mut ctx) = setup_with_policy(policy, storage_attrs());
        ctx.role = Role::Head; // lie
        let err = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::Denied);
    }

    #[test]
    fn bad_proof_rejected_without_audit() {
        let policy = Policy::new().allow(Action::Read, Expr::True);
        let (mut s, _, ctx) = setup_with_policy(policy, storage_attrs());
        // Proof signed by the wrong key.
        let thief = SigningKey::from_seed(b"thief");
        let cred = s.issuer.issue(
            storage_attrs(),
            s.subject_key.verifying_key(),
            SimTime::from_secs(10_000),
        );
        let bad = prove_possession(&cred, &thief, &challenge_bytes(7, ctx.now));
        let err = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &bad,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::BadProof);
        assert!(s.package.audit.is_empty(), "unverified requesters leave no log entries");
    }

    #[test]
    fn proof_does_not_replay_across_packages() {
        let policy = Policy::new().allow(Action::Read, Expr::True);
        let (s, proof, ctx) = setup_with_policy(policy.clone(), storage_attrs());
        // Same proof against a different package id must fail (challenge mismatch).
        let owner = SigningKey::from_seed(b"owner2");
        let mut other =
            DataPackage::seal_new(8, b"other data", policy, &owner, &s.tpd.public_share(), 1);
        let err = s
            .tpd
            .request_access(
                &mut other,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::BadProof);
    }

    #[test]
    fn rewrapped_policy_detected() {
        let strict = Policy::new().allow(Action::Read, Expr::HasRole(Role::Head));
        let (mut s, proof, ctx) = setup_with_policy(strict, storage_attrs());
        // Attacker swaps in a permissive policy without the owner's key.
        s.package.policy = Policy::new().allow(Action::Read, Expr::True);
        let err = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::Corrupt);
    }

    #[test]
    fn emergency_escalation_grants() {
        let policy = Policy::new()
            .allow(Action::Read, Expr::HasRole(Role::Head))
            .allow_in_emergency(Action::Read, Expr::AutomationAtLeast(SaeLevel::L3));
        let (mut s, proof, mut ctx) = setup_with_policy(policy, storage_attrs());
        ctx.emergency = true;
        let out = s
            .tpd
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap();
        assert_eq!(out, b"sensor archive");
        assert_eq!(s.package.audit.records()[0].decision, Decision::PermitEmergency);
    }

    #[test]
    fn wrong_tpd_cannot_unseal() {
        let policy = Policy::new().allow(Action::Read, Expr::True);
        let (mut s, proof, ctx) = setup_with_policy(policy, storage_attrs());
        let rogue = TpdEnforcer::new(b"rogue-device");
        let err = rogue
            .request_access(
                &mut s.package,
                Action::Read,
                &proof,
                &s.issuer.public_key(),
                &ctx,
                PseudonymId(1),
            )
            .unwrap_err();
        assert_eq!(err, AccessError::Corrupt);
    }

    #[test]
    fn binding_survives_audit_growth() {
        // Audit appends must not invalidate the owner binding (audit is
        // outside the signed commitment by design: it grows in transit).
        let policy = Policy::new().allow(Action::Read, Expr::True);
        let (mut s, proof, ctx) = setup_with_policy(policy, storage_attrs());
        assert!(s.package.verify_binding());
        let _ = s.tpd.request_access(
            &mut s.package,
            Action::Read,
            &proof,
            &s.issuer.public_key(),
            &ctx,
            PseudonymId(1),
        );
        assert!(s.package.verify_binding());
        assert_eq!(s.package.audit.len(), 1);
    }
}
