//! Tamper-evident audit logging.
//!
//! §V-C of the paper requires that "any access to the data will trigger
//! automatic logging actions for future auditing". The log is a hash chain:
//! each record commits to its predecessor, so truncation or in-place edits
//! are detectable by anyone holding the latest head hash.

use crate::policy::{Action, Decision};
use vc_auth::pseudonym::PseudonymId;
use vc_crypto::sha256::{sha256_parts, Digest};
use vc_sim::time::SimTime;

/// One audit record.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// When the access was attempted.
    pub at: SimTime,
    /// Who (pseudonymously) attempted it.
    pub who: PseudonymId,
    /// What they attempted.
    pub action: Action,
    /// The decision rendered.
    pub decision: Decision,
    /// Hash of the previous record (all-zero for the first).
    pub prev: Digest,
    /// This record's hash.
    pub hash: Digest,
}

fn action_byte(a: Action) -> u8 {
    match a {
        Action::Read => 0,
        Action::Write => 1,
        Action::Compute => 2,
        Action::Delegate => 3,
    }
}

fn decision_byte(d: Decision) -> u8 {
    match d {
        Decision::Permit => 0,
        Decision::PermitEmergency => 1,
        Decision::Deny => 2,
    }
}

fn record_hash(
    at: SimTime,
    who: PseudonymId,
    action: Action,
    decision: Decision,
    prev: &Digest,
) -> Digest {
    sha256_parts(&[
        b"vc-audit",
        &at.as_micros().to_be_bytes(),
        &who.0.to_be_bytes(),
        &[action_byte(action), decision_byte(decision)],
        prev,
    ])
}

/// A hash-chained audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a record, chaining it to the current head.
    pub fn append(&mut self, at: SimTime, who: PseudonymId, action: Action, decision: Decision) {
        let prev = self.head().unwrap_or([0u8; 32]);
        let hash = record_hash(at, who, action, decision, &prev);
        self.records.push(AuditRecord { at, who, action, decision, prev, hash });
    }

    /// Hash of the latest record (the value an owner keeps to detect
    /// tampering), or `None` for an empty log.
    pub fn head(&self) -> Option<Digest> {
        self.records.last().map(|r| r.hash)
    }

    /// All records in order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Verifies the whole chain and, optionally, that it ends at
    /// `expected_head`.
    pub fn verify(&self, expected_head: Option<&Digest>) -> bool {
        let mut prev = [0u8; 32];
        for r in &self.records {
            if r.prev != prev {
                return false;
            }
            let recomputed = record_hash(r.at, r.who, r.action, r.decision, &r.prev);
            if recomputed != r.hash {
                return false;
            }
            prev = r.hash;
        }
        match expected_head {
            Some(h) => self.head().as_ref() == Some(h),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> AuditLog {
        let mut log = AuditLog::new();
        for i in 0..n {
            log.append(
                SimTime::from_secs(i as u64),
                PseudonymId(i as u64),
                if i % 2 == 0 { Action::Read } else { Action::Write },
                if i % 3 == 0 { Decision::Deny } else { Decision::Permit },
            );
        }
        log
    }

    #[test]
    fn empty_log_verifies() {
        let log = AuditLog::new();
        assert!(log.verify(None));
        assert_eq!(log.head(), None);
        assert!(log.is_empty());
    }

    #[test]
    fn chain_verifies_and_head_matches() {
        let log = sample(10);
        assert_eq!(log.len(), 10);
        assert!(log.verify(None));
        let head = log.head().unwrap();
        assert!(log.verify(Some(&head)));
    }

    #[test]
    fn edited_record_detected() {
        let mut log = sample(5);
        log.records[2].who = PseudonymId(999);
        assert!(!log.verify(None));
    }

    #[test]
    fn flipped_decision_detected() {
        let mut log = sample(5);
        log.records[3].decision = Decision::PermitEmergency;
        assert!(!log.verify(None));
    }

    #[test]
    fn truncation_detected_against_head() {
        let log = sample(5);
        let head = log.head().unwrap();
        let mut cut = log.clone();
        cut.records.pop();
        assert!(cut.verify(None), "internally consistent");
        assert!(!cut.verify(Some(&head)), "but not against the saved head");
    }

    #[test]
    fn reordering_detected() {
        let mut log = sample(4);
        log.records.swap(1, 2);
        assert!(!log.verify(None));
    }

    #[test]
    fn heads_differ_per_content() {
        let a = sample(3);
        let mut b = AuditLog::new();
        b.append(SimTime::from_secs(0), PseudonymId(0), Action::Read, Decision::Permit);
        assert_ne!(a.head(), b.head());
    }
}
