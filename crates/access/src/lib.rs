//! # vc-access — privacy-preserving access control for vehicular clouds
//!
//! The paper's third research thrust (§III-C, §IV-C, §V-C):
//!
//! * [`policy`] — context-based policies (role, speed, region, automation,
//!   time) with default-deny and millisecond emergency escalation
//! * [`credential`] — anonymous attribute credentials: verifiers learn
//!   certified attributes, never identities
//! * [`package`] — sticky data-policy packages enforced by tamper-proof
//!   devices: the policy travels with the data and every access is audited
//! * [`audit`] — hash-chained, tamper-evident access logs
//!
//! Experiment E5 measures the authorization latency distribution this stack
//! achieves; E10 exercises its resistance to escalation and re-wrapping.
//!
//! ## Example
//!
//! ```
//! use vc_access::policy::{Action, Context, Expr, Policy, Role};
//! use vc_sim::prelude::{Point, SimTime};
//!
//! let policy = Policy::new().allow(Action::Read, Expr::HasRole(Role::Storage));
//! let mut ctx = Context::member_at(Point::new(0.0, 0.0), SimTime::ZERO);
//! assert!(!policy.decide(Action::Read, &ctx).is_permit());
//! ctx.role = Role::Storage;
//! assert!(policy.decide(Action::Read, &ctx).is_permit());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod credential;
pub mod delegation;
pub mod package;
pub mod policy;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::audit::{AuditLog, AuditRecord};
    pub use crate::credential::{
        prove_possession, verify_possession, AttributeCredential, AttributeIssuer, Attributes,
        PossessionProof,
    };
    pub use crate::delegation::{
        grant, verify_chain, DelegationChain, DelegationError, DelegationGrant,
    };
    pub use crate::package::{challenge_bytes, AccessError, DataPackage, TpdEnforcer};
    pub use crate::policy::{Action, Context, Decision, Expr, Policy, Role};
}
