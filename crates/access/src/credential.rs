//! Anonymous attribute credentials.
//!
//! The paper's §V-C asks for authorization "without knowing other vehicles'
//! real identities": a verifier must learn *attributes* (role, automation
//! level, group membership) but not *who*. An issuer (TA or group head)
//! signs an attribute set bound to a pseudonym key; the subject proves
//! possession by signing a challenge with that key. Verifiers see
//! attributes + pseudonym — never the real identity.

use crate::policy::Role;
use vc_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use vc_sim::node::SaeLevel;
use vc_sim::time::SimTime;

/// The attribute set an issuer vouches for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attributes {
    /// Role the subject may claim.
    pub role: Role,
    /// Certified SAE automation level.
    pub automation: SaeLevel,
    /// Whether the subject may lend storage.
    pub storage_provider: bool,
    /// Whether the subject may lend compute.
    pub compute_provider: bool,
}

impl Attributes {
    fn encode(&self) -> [u8; 4] {
        let role = match self.role {
            Role::Member => 0u8,
            Role::Head => 1,
            Role::Storage => 2,
            Role::Sensor => 3,
            Role::Gateway => 4,
        };
        [role, self.automation.as_u8(), self.storage_provider as u8, self.compute_provider as u8]
    }
}

/// A signed attribute credential bound to a pseudonym key.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeCredential {
    /// The certified attributes.
    pub attributes: Attributes,
    /// The pseudonym key the credential is bound to.
    pub subject_key: VerifyingKey,
    /// Expiry.
    pub valid_until: SimTime,
    /// Issuer signature.
    pub issuer_signature: Signature,
}

impl AttributeCredential {
    fn signed_bytes(attrs: &Attributes, key: &VerifyingKey, until: SimTime) -> Vec<u8> {
        let mut out = attrs.encode().to_vec();
        out.extend_from_slice(&key.to_bytes());
        out.extend_from_slice(&until.as_micros().to_be_bytes());
        out
    }
}

/// An attribute issuer (the TA at registration, or a group head for
/// role attributes).
#[derive(Debug)]
pub struct AttributeIssuer {
    key: SigningKey,
}

impl AttributeIssuer {
    /// Creates an issuer from seed material.
    pub fn new(seed: &[u8]) -> Self {
        AttributeIssuer { key: SigningKey::from_seed(seed) }
    }

    /// The issuer's public key, known to verifiers.
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a credential binding `attributes` to `subject_key`.
    pub fn issue(
        &self,
        attributes: Attributes,
        subject_key: VerifyingKey,
        valid_until: SimTime,
    ) -> AttributeCredential {
        let body = AttributeCredential::signed_bytes(&attributes, &subject_key, valid_until);
        AttributeCredential {
            attributes,
            subject_key,
            valid_until,
            issuer_signature: self.key.sign(&body),
        }
    }
}

/// A proof of credential possession over a verifier-chosen challenge.
#[derive(Debug, Clone)]
pub struct PossessionProof {
    /// The presented credential.
    pub credential: AttributeCredential,
    /// Signature over the challenge with the credential's subject key.
    pub challenge_signature: Signature,
}

/// Subject side: produce a possession proof for `challenge`.
pub fn prove_possession(
    credential: &AttributeCredential,
    subject_key: &SigningKey,
    challenge: &[u8],
) -> PossessionProof {
    PossessionProof {
        credential: credential.clone(),
        challenge_signature: subject_key.sign(challenge),
    }
}

/// Verifier side: check the proof and return the certified attributes.
///
/// Returns `None` when the issuer signature, expiry, or challenge signature
/// fails — the caller learns attributes only from a sound proof.
pub fn verify_possession(
    proof: &PossessionProof,
    issuer_key: &VerifyingKey,
    challenge: &[u8],
    now: SimTime,
) -> Option<Attributes> {
    let cred = &proof.credential;
    if now > cred.valid_until {
        return None;
    }
    let body =
        AttributeCredential::signed_bytes(&cred.attributes, &cred.subject_key, cred.valid_until);
    if !issuer_key.verify(&body, &cred.issuer_signature) {
        return None;
    }
    if !cred.subject_key.verify(challenge, &proof.challenge_signature) {
        return None;
    }
    Some(cred.attributes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> Attributes {
        Attributes {
            role: Role::Storage,
            automation: SaeLevel::L4,
            storage_provider: true,
            compute_provider: false,
        }
    }

    fn setup() -> (AttributeIssuer, SigningKey, AttributeCredential) {
        let issuer = AttributeIssuer::new(b"issuer");
        let subject = SigningKey::from_seed(b"subject-pseudonym");
        let cred = issuer.issue(attrs(), subject.verifying_key(), SimTime::from_secs(1000));
        (issuer, subject, cred)
    }

    #[test]
    fn prove_and_verify() {
        let (issuer, subject, cred) = setup();
        let proof = prove_possession(&cred, &subject, b"challenge-123");
        let got = verify_possession(
            &proof,
            &issuer.public_key(),
            b"challenge-123",
            SimTime::from_secs(10),
        );
        assert_eq!(got, Some(attrs()));
    }

    #[test]
    fn stolen_credential_without_key_fails() {
        let (issuer, _, cred) = setup();
        let thief = SigningKey::from_seed(b"thief");
        let proof = prove_possession(&cred, &thief, b"challenge");
        assert_eq!(
            verify_possession(&proof, &issuer.public_key(), b"challenge", SimTime::from_secs(10)),
            None
        );
    }

    #[test]
    fn wrong_challenge_fails() {
        let (issuer, subject, cred) = setup();
        let proof = prove_possession(&cred, &subject, b"challenge-A");
        assert_eq!(
            verify_possession(&proof, &issuer.public_key(), b"challenge-B", SimTime::from_secs(10)),
            None
        );
    }

    #[test]
    fn expired_credential_fails() {
        let (issuer, subject, cred) = setup();
        let proof = prove_possession(&cred, &subject, b"c");
        assert_eq!(
            verify_possession(&proof, &issuer.public_key(), b"c", SimTime::from_secs(2000)),
            None
        );
    }

    #[test]
    fn self_issued_attributes_fail() {
        let (issuer, subject, _) = setup();
        // Subject forges a credential claiming Head role, signed by itself.
        let fake_issuer = AttributeIssuer::new(b"subject-as-issuer");
        let forged = fake_issuer.issue(
            Attributes { role: Role::Head, ..attrs() },
            subject.verifying_key(),
            SimTime::from_secs(1000),
        );
        let proof = prove_possession(&forged, &subject, b"c");
        assert_eq!(
            verify_possession(&proof, &issuer.public_key(), b"c", SimTime::from_secs(1)),
            None
        );
    }

    #[test]
    fn tampered_attributes_fail() {
        let (issuer, subject, mut cred) = setup();
        cred.attributes.role = Role::Head;
        let proof = prove_possession(&cred, &subject, b"c");
        assert_eq!(
            verify_possession(&proof, &issuer.public_key(), b"c", SimTime::from_secs(1)),
            None
        );
    }
}
