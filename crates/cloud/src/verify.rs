//! Verifiable task execution through redundancy (paper §IV-D, after Huang
//! et al.'s PTVC: "the user can verify the correctness of computation
//! results").
//!
//! Without a trusted substrate, a v-cloud cannot assume lender vehicles
//! compute honestly. The redundant-execution verifier dispatches each job to
//! `r` independent hosts, signs and collects result digests, accepts the
//! majority digest, and flags disagreeing hosts to the reputation layer.
//! Experiment E12 sweeps cheater fraction vs undetected-error rate and cost.

use std::collections::BTreeMap;
use vc_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use vc_crypto::sha256::{sha256_parts, Digest};
use vc_sim::node::VehicleId;
use vc_sim::time::SimTime;

/// A signed receipt: "host `who` computed digest `result` for job `job`".
#[derive(Debug, Clone, PartialEq)]
pub struct ResultReceipt {
    /// The job this receipt is for.
    pub job: u64,
    /// The executing host.
    pub who: VehicleId,
    /// Digest of the claimed result payload.
    pub result: Digest,
    /// When the host finished.
    pub at: SimTime,
    /// Host signature over the above.
    pub signature: Signature,
}

impl ResultReceipt {
    fn signed_bytes(job: u64, who: VehicleId, result: &Digest, at: SimTime) -> Vec<u8> {
        let mut out = job.to_be_bytes().to_vec();
        out.extend_from_slice(&who.0.to_be_bytes());
        out.extend_from_slice(result);
        out.extend_from_slice(&at.as_micros().to_be_bytes());
        out
    }

    /// Creates a receipt signed with the host's key.
    pub fn sign(job: u64, who: VehicleId, payload: &[u8], at: SimTime, key: &SigningKey) -> Self {
        let result = sha256_parts(&[b"vc-result", payload]);
        let signature = key.sign(&Self::signed_bytes(job, who, &result, at));
        ResultReceipt { job, who, result, at, signature }
    }

    /// Verifies the host's signature.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        key.verify(&Self::signed_bytes(self.job, self.who, &self.result, self.at), &self.signature)
    }
}

/// Outcome of adjudicating one job's receipts.
#[derive(Debug, Clone, PartialEq)]
pub enum Adjudication {
    /// A strict majority agreed on one digest.
    Accepted {
        /// The accepted result digest.
        result: Digest,
        /// Hosts that reported a different digest (cheaters or faulty).
        dissenters: Vec<VehicleId>,
    },
    /// No digest reached a strict majority — the job must re-run.
    Inconclusive,
}

/// Adjudicates signed receipts for a job: verifies signatures, majority-votes
/// on the result digest.
///
/// Receipts failing signature verification are discarded (and reported as
/// dissenters — an invalid receipt is at best a fault).
pub fn adjudicate(
    receipts: &[ResultReceipt],
    keys: &BTreeMap<VehicleId, VerifyingKey>,
) -> Adjudication {
    let mut valid: Vec<&ResultReceipt> = Vec::new();
    let mut invalid: Vec<VehicleId> = Vec::new();
    for r in receipts {
        match keys.get(&r.who) {
            Some(k) if r.verify(k) => valid.push(r),
            _ => invalid.push(r.who),
        }
    }
    if valid.is_empty() {
        return Adjudication::Inconclusive;
    }
    let mut tally: BTreeMap<Digest, Vec<VehicleId>> = BTreeMap::new();
    for r in &valid {
        tally.entry(r.result).or_default().push(r.who);
    }
    let (winner, supporters) = tally
        .iter()
        .max_by_key(|(_, v)| v.len())
        .map(|(d, v)| (*d, v.clone()))
        .expect("non-empty tally");
    if supporters.len() * 2 <= valid.len() {
        return Adjudication::Inconclusive;
    }
    let mut dissenters: Vec<VehicleId> =
        valid.iter().filter(|r| r.result != winner).map(|r| r.who).collect();
    dissenters.extend(invalid);
    dissenters.sort();
    dissenters.dedup();
    Adjudication::Accepted { result: winner, dissenters }
}

/// The digest an honest execution of `payload` produces (what hosts should
/// report; exposed so callers can check the accepted digest against a local
/// recomputation when they eventually can).
pub fn honest_digest(payload: &[u8]) -> Digest {
    sha256_parts(&[b"vc-result", payload])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Vec<SigningKey>, BTreeMap<VehicleId, VerifyingKey>) {
        let keys: Vec<SigningKey> =
            (0..n).map(|i| SigningKey::from_seed(&[i as u8, 0xAA])).collect();
        let directory = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (VehicleId(i as u32), k.verifying_key()))
            .collect();
        (keys, directory)
    }

    #[test]
    fn unanimous_agreement_accepts() {
        let (keys, dir) = setup(3);
        let receipts: Vec<ResultReceipt> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                ResultReceipt::sign(1, VehicleId(i as u32), b"42", SimTime::from_secs(5), k)
            })
            .collect();
        match adjudicate(&receipts, &dir) {
            Adjudication::Accepted { result, dissenters } => {
                assert_eq!(result, honest_digest(b"42"));
                assert!(dissenters.is_empty());
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn minority_cheater_is_flagged() {
        let (keys, dir) = setup(3);
        let mut receipts: Vec<ResultReceipt> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                ResultReceipt::sign(1, VehicleId(i as u32), b"42", SimTime::from_secs(5), k)
            })
            .collect();
        // Host 2 lies.
        receipts[2] =
            ResultReceipt::sign(1, VehicleId(2), b"evil", SimTime::from_secs(5), &keys[2]);
        match adjudicate(&receipts, &dir) {
            Adjudication::Accepted { result, dissenters } => {
                assert_eq!(result, honest_digest(b"42"));
                assert_eq!(dissenters, vec![VehicleId(2)]);
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn cheating_majority_wins_the_vote() {
        // The known limit of redundancy: 2 colluding cheaters out of 3 carry
        // the vote. E12 quantifies how often this happens per cheater rate.
        let (keys, dir) = setup(3);
        let receipts = vec![
            ResultReceipt::sign(1, VehicleId(0), b"42", SimTime::from_secs(5), &keys[0]),
            ResultReceipt::sign(1, VehicleId(1), b"evil", SimTime::from_secs(5), &keys[1]),
            ResultReceipt::sign(1, VehicleId(2), b"evil", SimTime::from_secs(5), &keys[2]),
        ];
        match adjudicate(&receipts, &dir) {
            Adjudication::Accepted { result, dissenters } => {
                assert_eq!(result, honest_digest(b"evil"));
                assert_eq!(dissenters, vec![VehicleId(0)]);
            }
            other => panic!("expected (wrong) accept, got {other:?}"),
        }
    }

    #[test]
    fn tie_is_inconclusive() {
        let (keys, dir) = setup(2);
        let receipts = vec![
            ResultReceipt::sign(1, VehicleId(0), b"a", SimTime::from_secs(5), &keys[0]),
            ResultReceipt::sign(1, VehicleId(1), b"b", SimTime::from_secs(5), &keys[1]),
        ];
        assert_eq!(adjudicate(&receipts, &dir), Adjudication::Inconclusive);
    }

    #[test]
    fn forged_receipt_discarded() {
        let (keys, dir) = setup(3);
        let mut receipts: Vec<ResultReceipt> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                ResultReceipt::sign(1, VehicleId(i as u32), b"42", SimTime::from_secs(5), k)
            })
            .collect();
        // Host 2's receipt is forged (signed with the wrong key).
        receipts[2] = ResultReceipt::sign(1, VehicleId(2), b"42", SimTime::from_secs(5), &keys[0]);
        match adjudicate(&receipts, &dir) {
            Adjudication::Accepted { dissenters, .. } => {
                assert_eq!(dissenters, vec![VehicleId(2)], "forger flagged");
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn unknown_host_discarded() {
        let (keys, dir) = setup(2);
        let receipts = vec![
            ResultReceipt::sign(1, VehicleId(0), b"x", SimTime::from_secs(5), &keys[0]),
            ResultReceipt::sign(1, VehicleId(1), b"x", SimTime::from_secs(5), &keys[1]),
            // Not in the directory:
            ResultReceipt::sign(1, VehicleId(99), b"y", SimTime::from_secs(5), &keys[0]),
        ];
        match adjudicate(&receipts, &dir) {
            Adjudication::Accepted { result, dissenters } => {
                assert_eq!(result, honest_digest(b"x"));
                assert_eq!(dissenters, vec![VehicleId(99)]);
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn empty_receipts_inconclusive() {
        let (_, dir) = setup(1);
        assert_eq!(adjudicate(&[], &dir), Adjudication::Inconclusive);
    }

    #[test]
    fn single_receipt_accepts_trivially() {
        // r = 1 is the no-verification baseline: whatever the lone host says
        // is accepted — E12's vulnerable arm.
        let (keys, dir) = setup(1);
        let r = ResultReceipt::sign(1, VehicleId(0), b"whatever", SimTime::from_secs(1), &keys[0]);
        assert!(matches!(adjudicate(&[r], &dir), Adjudication::Accepted { .. }));
    }
}
