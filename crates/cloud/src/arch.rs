//! The three vehicular-cloud architectures (paper Fig. 4) and the cloud
//! simulation driver.
//!
//! * **Stationary** — parked vehicles form a datacenter-like pool (4(a)).
//! * **Infrastructure-based** — membership is whoever an online RSU covers;
//!   the RSU coordinates (4(b)).
//! * **Dynamic** — self-organized clusters elect a broker vehicle via the
//!   clustering layer; membership is the broker's cluster (4(c)).
//!
//! The same scheduler runs over all three; what differs is *who is a member
//! right now* and *how long each member is expected to stay* — which is
//! exactly what experiments E2/E3 compare.

use crate::scheduler::{HostInfo, Scheduler, SchedulerConfig};
use crate::stay::{HostDynamics, StayEstimator};
use crate::task::{TaskId, TaskSpec};
use vc_net::cluster::{form_clusters, ClusterConfig};
use vc_net::world::WorldView;
use vc_sim::geom::Point;
use vc_sim::node::VehicleId;
use vc_sim::scenario::Scenario;
use vc_sim::time::{SimDuration, SimTime};

/// Which Fig. 4 architecture a cloud runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchitectureKind {
    /// Parked-vehicle datacenter.
    Stationary,
    /// RSU-coordinated membership.
    InfrastructureBased,
    /// Self-organized broker-led cluster.
    Dynamic,
}

impl std::fmt::Display for ArchitectureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArchitectureKind::Stationary => "stationary",
            ArchitectureKind::InfrastructureBased => "infrastructure",
            ArchitectureKind::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// The current membership of a cloud.
#[derive(Debug, Clone, Default)]
pub struct Membership {
    /// Member vehicles.
    pub members: Vec<VehicleId>,
    /// The coordinating broker (None when an RSU coordinates).
    pub broker: Option<VehicleId>,
    /// Geometric center of the group (for stay estimation).
    pub center: Point,
    /// Radius within which members remain reachable.
    pub radius: f64,
}

/// Computes the current membership for an architecture over a scenario.
pub fn membership(kind: ArchitectureKind, scenario: &Scenario) -> Membership {
    match kind {
        ArchitectureKind::Stationary => {
            let members: Vec<VehicleId> = scenario
                .fleet
                .vehicles()
                .iter()
                .filter(|v| {
                    scenario.fleet.is_online(v.id())
                        && matches!(v.mobility, vc_sim::mobility::Mobility::Parked { .. })
                })
                .map(|v| v.id())
                .collect();
            let center = centroid(scenario, &members);
            Membership { broker: members.first().copied(), members, center, radius: 1_000.0 }
        }
        ArchitectureKind::InfrastructureBased => {
            let members: Vec<VehicleId> = scenario
                .fleet
                .vehicles()
                .iter()
                .filter(|v| {
                    scenario.fleet.is_online(v.id())
                        && scenario.rsus.covering(scenario.fleet.pos(v.id())).is_some()
                })
                .map(|v| v.id())
                .collect();
            let center = centroid(scenario, &members);
            Membership { broker: None, members, center, radius: 350.0 }
        }
        ArchitectureKind::Dynamic => {
            let neighbors = scenario.neighbor_table();
            let world = WorldView {
                positions: scenario.fleet.positions(),
                velocities: scenario.fleet.velocities(),
                online: scenario.fleet.online_flags(),
                neighbors: &neighbors,
            };
            let clustering = form_clusters(&world, &ClusterConfig::multi_hop());
            // The cloud is the largest cluster; its head is the broker.
            let best = clustering
                .heads()
                .max_by_key(|&h| (clustering.members(h).len(), std::cmp::Reverse(h)));
            match best {
                Some(head) => {
                    let members = clustering.members(head).to_vec();
                    let center = centroid(scenario, &members);
                    Membership {
                        broker: Some(head),
                        members,
                        center,
                        radius: scenario.channel.range_m
                            * ClusterConfig::multi_hop().max_hops as f64,
                    }
                }
                None => Membership::default(),
            }
        }
    }
}

fn centroid(scenario: &Scenario, members: &[VehicleId]) -> Point {
    if members.is_empty() {
        return Point::new(0.0, 0.0);
    }
    let sum = members.iter().fold(Point::new(0.0, 0.0), |acc, &id| acc + scenario.fleet.pos(id));
    sum / members.len() as f64
}

/// Converts a membership into scheduler host descriptors using the given
/// stay estimator.
pub fn hosts_of(
    scenario: &Scenario,
    membership: &Membership,
    estimator: &dyn StayEstimator,
) -> Vec<HostInfo> {
    membership
        .members
        .iter()
        .map(|&id| {
            let v = scenario.fleet.vehicle(id);
            let parked = matches!(v.mobility, vc_sim::mobility::Mobility::Parked { .. });
            let dynamics = HostDynamics {
                pos: scenario.fleet.pos(id),
                vel: scenario.fleet.velocity(id),
                group_center: membership.center,
                group_radius: membership.radius,
                parked,
            };
            HostInfo {
                id,
                cpu_gflops: v.profile.resources.cpu_gflops,
                automation: v.profile.automation,
                stay_estimate_s: estimator.estimate(&dynamics),
            }
        })
        .collect()
}

/// A full cloud simulation: scenario + architecture + scheduler.
pub struct CloudSim<E: StayEstimator> {
    /// The underlying world (public for failure injection in experiments).
    pub scenario: Scenario,
    kind: ArchitectureKind,
    scheduler: Scheduler,
    estimator: E,
    now: SimTime,
    next_task: u64,
}

impl<E: StayEstimator> CloudSim<E> {
    /// Creates a cloud simulation.
    pub fn new(
        scenario: Scenario,
        kind: ArchitectureKind,
        config: SchedulerConfig,
        estimator: E,
    ) -> Self {
        CloudSim {
            scenario,
            kind,
            scheduler: Scheduler::new(config),
            estimator,
            now: SimTime::ZERO,
            next_task: 0,
        }
    }

    /// The architecture this cloud runs.
    pub fn kind(&self) -> ArchitectureKind {
        self.kind
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Submits `n` identical compute tasks, returning their ids.
    pub fn submit_batch(
        &mut self,
        n: usize,
        work_gflop: f64,
        deadline: Option<SimDuration>,
    ) -> Vec<TaskId> {
        (0..n)
            .map(|_| {
                let id = TaskId(self.next_task);
                self.next_task += 1;
                let mut spec = TaskSpec::compute(id, work_gflop);
                spec.deadline = deadline.map(|d| self.now + d);
                self.scheduler.submit(spec, self.now);
                id
            })
            .collect()
    }

    /// Advances the world and the scheduler one step.
    pub fn tick(&mut self) {
        self.tick_obs(None);
    }

    /// Advances like [`CloudSim::tick`], routing world ticks through the
    /// recorder's probe and emitting a `cloud`/`membership` event with the
    /// member count and broker presence. All probed sub-paths delegate to
    /// their unprobed implementations, so the run is identical to [`tick`]
    /// with the same seed.
    ///
    /// [`tick`]: CloudSim::tick
    pub fn tick_obs(&mut self, mut rec: Option<&mut vc_obs::Recorder>) {
        let _tick = vc_obs::profile::frame("cloud.tick");
        {
            let _sim = vc_obs::profile::frame("sim.tick");
            self.scenario.tick_probed(self.now, vc_obs::as_probe(&mut rec));
        }
        self.now += SimDuration::from_secs_f64(self.scenario.dt);
        let membership = membership(self.kind, &self.scenario);
        let hosts = hosts_of(&self.scenario, &membership, &self.estimator);
        if let Some(r) = vc_obs::reborrow(&mut rec) {
            r.event(
                self.now,
                "cloud",
                "membership",
                vec![
                    ("members", membership.members.len().into()),
                    ("broker", membership.broker.is_some().into()),
                ],
            );
            r.hub_mut().gauge_set("cloud.membership.size", membership.members.len() as f64);
        }
        self.scheduler.tick_obs(self.now, self.scenario.dt, &hosts, rec);
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs `n` instrumented ticks (see [`CloudSim::tick_obs`]).
    pub fn run_ticks_obs(&mut self, n: usize, mut rec: Option<&mut vc_obs::Recorder>) {
        for _ in 0..n {
            self.tick_obs(vc_obs::reborrow(&mut rec));
        }
    }

    /// The scheduler (statistics, task states).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Current membership snapshot.
    pub fn membership(&self) -> Membership {
        membership(self.kind, &self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stay::Kinematic;
    use vc_sim::scenario::ScenarioBuilder;

    fn builder(seed: u64, n: usize) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new();
        b.seed(seed).vehicles(n);
        b
    }

    #[test]
    fn stationary_membership_is_whole_lot() {
        let s = builder(1, 20).parking_lot();
        let m = membership(ArchitectureKind::Stationary, &s);
        assert_eq!(m.members.len(), 20);
        assert!(m.broker.is_some());
    }

    #[test]
    fn infrastructure_membership_requires_coverage() {
        let mut s = builder(2, 30).urban_with_rsus();
        let m = membership(ArchitectureKind::InfrastructureBased, &s);
        assert!(!m.members.is_empty(), "urban grid has RSU coverage");
        assert_eq!(m.broker, None);
        // Kill all RSUs: membership collapses.
        let mut rng = vc_sim::rng::SimRng::seed_from(9);
        s.rsus.fail_fraction(1.0, &mut rng);
        let m2 = membership(ArchitectureKind::InfrastructureBased, &s);
        assert!(m2.members.is_empty());
    }

    #[test]
    fn dynamic_membership_elects_broker() {
        let s = builder(3, 30).highway_no_infra();
        let m = membership(ArchitectureKind::Dynamic, &s);
        assert!(!m.members.is_empty());
        let broker = m.broker.expect("cluster head elected");
        assert!(m.members.contains(&broker));
    }

    #[test]
    fn stationary_cloud_completes_tasks() {
        let scenario = builder(4, 30).parking_lot();
        let mut sim = CloudSim::new(
            scenario,
            ArchitectureKind::Stationary,
            SchedulerConfig::default(),
            Kinematic,
        );
        sim.submit_batch(10, 50.0, None);
        sim.run_ticks(100);
        assert_eq!(sim.scheduler().stats().completed, 10);
    }

    #[test]
    fn dynamic_cloud_completes_tasks_under_churn() {
        let scenario = builder(5, 40).urban_with_rsus();
        let mut sim = CloudSim::new(
            scenario,
            ArchitectureKind::Dynamic,
            SchedulerConfig::default(),
            Kinematic,
        );
        sim.submit_batch(10, 30.0, None);
        sim.run_ticks(300);
        let stats = sim.scheduler().stats();
        assert!(stats.completed >= 5, "only {} completed", stats.completed);
    }

    #[test]
    fn infrastructure_cloud_stops_when_rsus_die() {
        let scenario = builder(6, 40).urban_with_rsus();
        let mut sim = CloudSim::new(
            scenario,
            ArchitectureKind::InfrastructureBased,
            SchedulerConfig::default(),
            Kinematic,
        );
        sim.submit_batch(50, 2000.0, None);
        sim.run_ticks(20);
        let mid = sim.scheduler().stats().completed;
        // Disaster: all RSUs fail.
        let mut rng = vc_sim::rng::SimRng::seed_from(7);
        sim.scenario.rsus.fail_fraction(1.0, &mut rng);
        sim.run_ticks(50);
        // No further capacity is offered once coverage is gone: live tasks stall.
        let m = sim.membership();
        assert!(m.members.is_empty());
        let _ = mid;
        assert!(sim.scheduler().live_tasks() > 0, "big tasks cannot finish without members");
    }

    #[test]
    fn deterministic_cloud_runs() {
        let run = |seed| {
            let scenario = builder(seed, 25).urban_with_rsus();
            let mut sim = CloudSim::new(
                scenario,
                ArchitectureKind::Dynamic,
                SchedulerConfig::default(),
                Kinematic,
            );
            sim.submit_batch(8, 40.0, None);
            sim.run_ticks(150);
            sim.scheduler().stats().completed
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn instrumented_cloud_run_matches_plain() {
        let mk = || {
            let scenario = builder(5, 40).urban_with_rsus();
            let mut sim = CloudSim::new(
                scenario,
                ArchitectureKind::Dynamic,
                SchedulerConfig::default(),
                Kinematic,
            );
            sim.submit_batch(10, 30.0, None);
            sim
        };
        let mut plain = mk();
        plain.run_ticks(120);
        let mut probed = mk();
        let mut rec = vc_obs::Recorder::new();
        probed.run_ticks_obs(120, Some(&mut rec));
        assert_eq!(
            probed.scheduler().stats().completed,
            plain.scheduler().stats().completed,
            "tracing must not perturb the run"
        );
        assert_eq!(rec.hub().counter("cloud.membership"), 120);
        assert_eq!(rec.hub().counter("sim.tick"), 120);
        assert!(rec.hub().counter("cloud.sched.place") > 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchitectureKind::Stationary.to_string(), "stationary");
        assert_eq!(ArchitectureKind::InfrastructureBased.to_string(), "infrastructure");
        assert_eq!(ArchitectureKind::Dynamic.to_string(), "dynamic");
    }
}
