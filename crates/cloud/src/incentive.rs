//! Privacy-preserving lending incentives (paper §IV-B/§IV-C, after Kong et
//! al. [17] "a secure and privacy-preserving incentive framework for
//! vehicular cloud on the road" and [18]).
//!
//! Vehicles lend compute/storage only if lending pays. The bank (TA-run,
//! consulted offline like every authority here) issues **credit notes** to
//! pseudonyms against verified work receipts; notes transfer between
//! pseudonyms by endorsement (so a vehicle can spend under a different
//! pseudonym than it earned under — unlinkability across the earn/spend
//! boundary); double spending is caught at redemption by serial.

use std::collections::BTreeSet;
use vc_auth::pseudonym::PseudonymId;
use vc_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use vc_crypto::sha256::{sha256_parts, Digest};

/// A transferable credit note.
#[derive(Debug, Clone, PartialEq)]
pub struct CreditNote {
    /// Unique serial (double-spend handle).
    pub serial: u64,
    /// Credit amount.
    pub amount: u32,
    /// The pseudonym key currently entitled to spend it.
    pub holder: VerifyingKey,
    /// Bank signature over (serial, amount, original holder).
    pub bank_signature: Signature,
    /// Endorsement chain: each entry transfers to a new holder key, signed
    /// by the previous holder.
    pub endorsements: Vec<Endorsement>,
    /// The first holder the bank issued to (anchor of the chain).
    original: VerifyingKey,
}

/// One transfer link.
#[derive(Debug, Clone, PartialEq)]
pub struct Endorsement {
    /// The new holder.
    pub to: VerifyingKey,
    /// Signature by the previous holder over (note digest so far, to).
    pub signature: Signature,
}

fn issue_bytes(serial: u64, amount: u32, holder: &VerifyingKey) -> Vec<u8> {
    let mut out = b"vc-credit-issue".to_vec();
    out.extend_from_slice(&serial.to_be_bytes());
    out.extend_from_slice(&amount.to_be_bytes());
    out.extend_from_slice(&holder.to_bytes());
    out
}

fn chain_digest(note: &CreditNote, upto: usize) -> Digest {
    let mut parts: Vec<Vec<u8>> =
        vec![issue_bytes(note.serial, note.amount, &original_holder(note))];
    for e in &note.endorsements[..upto] {
        let mut b = e.to.to_bytes().to_vec();
        b.extend_from_slice(&e.signature.to_bytes());
        parts.push(b);
    }
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    sha256_parts(&refs)
}

fn original_holder(note: &CreditNote) -> VerifyingKey {
    // The holder field tracks the CURRENT holder; the original is the first
    // link's signer, recoverable only by walking backwards — so we store it
    // implicitly: with no endorsements, holder IS the original.
    if note.endorsements.is_empty() {
        note.holder
    } else {
        note.original
    }
}

// To keep the original holder recoverable we carry it explicitly.
impl CreditNote {
    /// The first holder the bank issued to.
    pub fn issued_to(&self) -> VerifyingKey {
        original_holder(self)
    }
}

/// Why a note failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditError {
    /// The bank signature is invalid.
    BadIssue,
    /// An endorsement signature is invalid.
    BadEndorsement,
    /// The serial was already redeemed.
    DoubleSpend,
    /// The spender is not the current holder.
    NotHolder,
}

impl std::fmt::Display for CreditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CreditError::BadIssue => "bank signature invalid",
            CreditError::BadEndorsement => "endorsement invalid",
            CreditError::DoubleSpend => "serial already redeemed",
            CreditError::NotHolder => "spender does not hold the note",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CreditError {}

/// The credit bank.
#[derive(Debug)]
pub struct CreditBank {
    key: SigningKey,
    next_serial: u64,
    redeemed: BTreeSet<u64>,
    /// Total credit issued (auditing).
    pub issued_total: u64,
}

impl CreditBank {
    /// Creates a bank from seed material.
    pub fn new(seed: &[u8]) -> Self {
        CreditBank {
            key: SigningKey::from_seed(seed),
            next_serial: 1,
            redeemed: BTreeSet::new(),
            issued_total: 0,
        }
    }

    /// The bank's public key (vehicles verify notes offline against it).
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a note of `amount` to the holder of `holder` (typically upon a
    /// verified [`ResultReceipt`](crate::verify::ResultReceipt); the link is
    /// policy at the broker, not enforced here). `_earner` is recorded for
    /// audit symmetry with the pseudonym escrow.
    pub fn issue(&mut self, holder: VerifyingKey, amount: u32, _earner: PseudonymId) -> CreditNote {
        let serial = self.next_serial;
        self.next_serial += 1;
        self.issued_total += amount as u64;
        let bank_signature = self.key.sign(&issue_bytes(serial, amount, &holder));
        CreditNote {
            serial,
            amount,
            holder,
            bank_signature,
            endorsements: Vec::new(),
            original: holder,
        }
    }

    /// Validates a note offline (no spend): bank signature + endorsement
    /// chain + current holder consistency.
    ///
    /// # Errors
    ///
    /// See [`CreditError`].
    pub fn validate(&self, note: &CreditNote) -> Result<(), CreditError> {
        if !self
            .public_key()
            .verify(&issue_bytes(note.serial, note.amount, &note.issued_to()), &note.bank_signature)
        {
            return Err(CreditError::BadIssue);
        }
        let mut current = note.issued_to();
        for (i, e) in note.endorsements.iter().enumerate() {
            let digest = chain_digest(note, i);
            let mut body = b"vc-credit-endorse".to_vec();
            body.extend_from_slice(&digest);
            body.extend_from_slice(&e.to.to_bytes());
            if !current.verify(&body, &e.signature) {
                return Err(CreditError::BadEndorsement);
            }
            current = e.to;
        }
        if current != note.holder {
            return Err(CreditError::NotHolder);
        }
        Ok(())
    }

    /// Redeems a note: validates, checks the serial, marks it spent.
    ///
    /// # Errors
    ///
    /// See [`CreditError`].
    pub fn redeem(&mut self, note: &CreditNote) -> Result<u32, CreditError> {
        self.validate(note)?;
        if !self.redeemed.insert(note.serial) {
            return Err(CreditError::DoubleSpend);
        }
        Ok(note.amount)
    }
}

/// Holder-side transfer: endorses the note to `to` with the holder's key.
///
/// # Errors
///
/// [`CreditError::NotHolder`] when `holder_key` does not match the note's
/// current holder.
pub fn transfer(
    note: &CreditNote,
    holder_key: &SigningKey,
    to: VerifyingKey,
) -> Result<CreditNote, CreditError> {
    if holder_key.verifying_key() != note.holder {
        return Err(CreditError::NotHolder);
    }
    let digest = chain_digest(note, note.endorsements.len());
    let mut body = b"vc-credit-endorse".to_vec();
    body.extend_from_slice(&digest);
    body.extend_from_slice(&to.to_bytes());
    let signature = holder_key.sign(&body);
    let mut out = note.clone();
    out.endorsements.push(Endorsement { to, signature });
    out.holder = to;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (SigningKey, SigningKey) {
        (SigningKey::from_seed(b"earn-pseudonym"), SigningKey::from_seed(b"spend-pseudonym"))
    }

    #[test]
    fn issue_validate_redeem() {
        let mut bank = CreditBank::new(b"bank");
        let (earner, _) = keys();
        let note = bank.issue(earner.verifying_key(), 50, PseudonymId(1));
        assert_eq!(bank.validate(&note), Ok(()));
        assert_eq!(bank.redeem(&note), Ok(50));
        assert_eq!(bank.issued_total, 50);
    }

    #[test]
    fn double_spend_rejected() {
        let mut bank = CreditBank::new(b"bank");
        let (earner, _) = keys();
        let note = bank.issue(earner.verifying_key(), 10, PseudonymId(1));
        assert_eq!(bank.redeem(&note), Ok(10));
        assert_eq!(bank.redeem(&note), Err(CreditError::DoubleSpend));
    }

    #[test]
    fn transfer_changes_spender() {
        let mut bank = CreditBank::new(b"bank");
        let (earner, spender) = keys();
        let note = bank.issue(earner.verifying_key(), 25, PseudonymId(1));
        let moved = transfer(&note, &earner, spender.verifying_key()).unwrap();
        assert_eq!(bank.validate(&moved), Ok(()));
        assert_eq!(moved.holder, spender.verifying_key());
        assert_eq!(bank.redeem(&moved), Ok(25));
        // The original (pre-transfer) copy is the same serial: spent.
        assert_eq!(bank.redeem(&note), Err(CreditError::DoubleSpend));
    }

    #[test]
    fn multi_hop_transfer_chain() {
        let mut bank = CreditBank::new(b"bank");
        let a = SigningKey::from_seed(b"a");
        let b = SigningKey::from_seed(b"b");
        let c = SigningKey::from_seed(b"c");
        let note = bank.issue(a.verifying_key(), 5, PseudonymId(1));
        let n2 = transfer(&note, &a, b.verifying_key()).unwrap();
        let n3 = transfer(&n2, &b, c.verifying_key()).unwrap();
        assert_eq!(bank.validate(&n3), Ok(()));
        assert_eq!(n3.endorsements.len(), 2);
        assert_eq!(bank.redeem(&n3), Ok(5));
    }

    #[test]
    fn non_holder_cannot_transfer() {
        let mut bank = CreditBank::new(b"bank");
        let (earner, _) = keys();
        let thief = SigningKey::from_seed(b"thief");
        let note = bank.issue(earner.verifying_key(), 5, PseudonymId(1));
        assert_eq!(
            transfer(&note, &thief, thief.verifying_key()).unwrap_err(),
            CreditError::NotHolder
        );
        let _ = bank;
    }

    #[test]
    fn forged_note_and_forged_endorsement_rejected() {
        let mut bank = CreditBank::new(b"bank");
        let rogue_bank = CreditBank::new(b"rogue");
        let (earner, spender) = keys();
        // A note "issued" by a rogue bank.
        let mut rogue = rogue_bank;
        let fake = rogue.issue(earner.verifying_key(), 1000, PseudonymId(1));
        assert_eq!(bank.validate(&fake), Err(CreditError::BadIssue));
        // A real note with a forged endorsement.
        let note = bank.issue(earner.verifying_key(), 10, PseudonymId(1));
        let mut forged = note.clone();
        let thief = SigningKey::from_seed(b"thief");
        let digest = chain_digest(&forged, 0);
        let mut body = b"vc-credit-endorse".to_vec();
        body.extend_from_slice(&digest);
        body.extend_from_slice(&thief.verifying_key().to_bytes());
        forged
            .endorsements
            .push(Endorsement { to: thief.verifying_key(), signature: thief.sign(&body) });
        forged.holder = thief.verifying_key();
        assert_eq!(bank.validate(&forged), Err(CreditError::BadEndorsement));
        let _ = spender;
    }

    #[test]
    fn tampered_amount_rejected() {
        let mut bank = CreditBank::new(b"bank");
        let (earner, _) = keys();
        let mut note = bank.issue(earner.verifying_key(), 10, PseudonymId(1));
        note.amount = 10_000;
        assert_eq!(bank.validate(&note), Err(CreditError::BadIssue));
    }
}
