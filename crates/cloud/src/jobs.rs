//! Jobs: splitting work into tasks and aggregating results (paper §III-A —
//! "the design of resource sharing, task allocation, **result aggregation**,
//! and dissemination").
//!
//! A [`Job`] is a batch of tasks whose results combine through an
//! [`Aggregation`]; the broker tracks per-task results as they arrive from
//! lender hosts, exposes progress, flags stragglers for re-dispatch, and
//! produces the final aggregate (with a Merkle commitment so the result set
//! is verifiable after dissemination).

use crate::task::{TaskId, TaskSpec};
use std::collections::BTreeMap;
use vc_crypto::merkle::MerkleTree;
use vc_crypto::sha256::Digest;
use vc_sim::time::SimTime;

/// Identifier of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// How per-task results combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Results are numeric (8-byte big-endian f64) and summed — sensor
    /// averaging, counting.
    Sum,
    /// Results are concatenated in task order — map output assembly.
    Concat,
    /// Only a Merkle commitment over results is produced — dissemination by
    /// reference (receivers fetch chunks and verify against the root).
    Commitment,
}

/// Final output of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Sum of numeric results.
    Sum(f64),
    /// Ordered concatenation.
    Concat(Vec<u8>),
    /// Merkle root over the ordered results.
    Commitment(Digest),
}

/// One job's state at the broker.
#[derive(Debug, Clone)]
pub struct Job {
    /// This job's id.
    pub id: JobId,
    /// The task ids composing it, in aggregation order.
    pub tasks: Vec<TaskId>,
    /// The combiner.
    pub aggregation: Aggregation,
    /// Submission time (for straggler age).
    pub submitted_at: SimTime,
    results: BTreeMap<TaskId, Vec<u8>>,
}

impl Job {
    /// Fraction of tasks with results, `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.tasks.is_empty() {
            return 1.0;
        }
        self.results.len() as f64 / self.tasks.len() as f64
    }

    /// `true` once every task has a result.
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.tasks.len()
    }

    /// Task ids still missing results (straggler candidates, in order).
    pub fn missing(&self) -> Vec<TaskId> {
        self.tasks.iter().copied().filter(|t| !self.results.contains_key(t)).collect()
    }
}

/// The broker-side job manager.
#[derive(Debug, Default)]
pub struct JobManager {
    jobs: BTreeMap<JobId, Job>,
    next_job: u64,
    next_task: u64,
}

/// Errors from result recording / aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// Unknown job id.
    UnknownJob,
    /// The task does not belong to the job.
    UnknownTask,
    /// A result for this task was already recorded (and differs).
    ConflictingResult,
    /// The job is not complete yet.
    Incomplete,
    /// A numeric aggregation met a result that is not 8 bytes.
    MalformedNumeric,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobError::UnknownJob => "unknown job",
            JobError::UnknownTask => "task not part of job",
            JobError::ConflictingResult => "conflicting result for task",
            JobError::Incomplete => "job incomplete",
            JobError::MalformedNumeric => "numeric result must be 8 bytes",
        };
        f.write_str(s)
    }
}

impl std::error::Error for JobError {}

impl JobManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        JobManager::default()
    }

    /// Creates a job of `n_tasks` tasks of `work_gflop` each; returns the
    /// job id and the task specs to hand to the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks` is zero.
    pub fn create(
        &mut self,
        n_tasks: usize,
        work_gflop: f64,
        aggregation: Aggregation,
        now: SimTime,
    ) -> (JobId, Vec<TaskSpec>) {
        assert!(n_tasks > 0, "a job needs at least one task");
        let id = JobId(self.next_job);
        self.next_job += 1;
        let mut tasks = Vec::with_capacity(n_tasks);
        let mut specs = Vec::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            let tid = TaskId(self.next_task);
            self.next_task += 1;
            tasks.push(tid);
            specs.push(TaskSpec::compute(tid, work_gflop));
        }
        self.jobs.insert(
            id,
            Job { id, tasks, aggregation, submitted_at: now, results: BTreeMap::new() },
        );
        (id, specs)
    }

    /// The job record.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Records a task's result bytes. Duplicate identical results are
    /// idempotent; conflicting ones are rejected (and should trigger the
    /// verifiable-execution path).
    ///
    /// # Errors
    ///
    /// See [`JobError`].
    pub fn record_result(
        &mut self,
        job: JobId,
        task: TaskId,
        result: &[u8],
    ) -> Result<(), JobError> {
        let j = self.jobs.get_mut(&job).ok_or(JobError::UnknownJob)?;
        if !j.tasks.contains(&task) {
            return Err(JobError::UnknownTask);
        }
        match j.results.get(&task) {
            Some(existing) if existing.as_slice() == result => Ok(()),
            Some(_) => Err(JobError::ConflictingResult),
            None => {
                j.results.insert(task, result.to_vec());
                Ok(())
            }
        }
    }

    /// Aggregates a complete job.
    ///
    /// # Errors
    ///
    /// [`JobError::Incomplete`] before all results arrive;
    /// [`JobError::MalformedNumeric`] for bad Sum inputs.
    pub fn aggregate(&self, job: JobId) -> Result<JobResult, JobError> {
        let j = self.jobs.get(&job).ok_or(JobError::UnknownJob)?;
        if !j.is_complete() {
            return Err(JobError::Incomplete);
        }
        let ordered: Vec<&Vec<u8>> =
            j.tasks.iter().map(|t| j.results.get(t).expect("complete")).collect();
        match j.aggregation {
            Aggregation::Sum => {
                let mut sum = 0.0f64;
                for bytes in ordered {
                    if bytes.len() != 8 {
                        return Err(JobError::MalformedNumeric);
                    }
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(bytes);
                    let v = f64::from_be_bytes(arr);
                    if !v.is_finite() {
                        return Err(JobError::MalformedNumeric);
                    }
                    sum += v;
                }
                Ok(JobResult::Sum(sum))
            }
            Aggregation::Concat => {
                let mut out = Vec::new();
                for bytes in ordered {
                    out.extend_from_slice(bytes);
                }
                Ok(JobResult::Concat(out))
            }
            Aggregation::Commitment => {
                let tree = MerkleTree::from_leaves(&ordered);
                Ok(JobResult::Commitment(tree.root()))
            }
        }
    }

    /// Number of jobs tracked.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no jobs exist.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_complete_sum_job() {
        let mut mgr = JobManager::new();
        let (job, specs) = mgr.create(4, 50.0, Aggregation::Sum, SimTime::ZERO);
        assert_eq!(specs.len(), 4);
        assert_eq!(mgr.job(job).unwrap().progress(), 0.0);
        for (i, spec) in specs.iter().enumerate() {
            let value = (i as f64 + 1.0).to_be_bytes();
            mgr.record_result(job, spec.id, &value).unwrap();
        }
        assert!(mgr.job(job).unwrap().is_complete());
        assert_eq!(mgr.aggregate(job).unwrap(), JobResult::Sum(10.0));
    }

    #[test]
    fn concat_preserves_task_order() {
        let mut mgr = JobManager::new();
        let (job, specs) = mgr.create(3, 10.0, Aggregation::Concat, SimTime::ZERO);
        // Record out of order.
        mgr.record_result(job, specs[2].id, b"C").unwrap();
        mgr.record_result(job, specs[0].id, b"A").unwrap();
        mgr.record_result(job, specs[1].id, b"B").unwrap();
        assert_eq!(mgr.aggregate(job).unwrap(), JobResult::Concat(b"ABC".to_vec()));
    }

    #[test]
    fn commitment_is_order_sensitive_and_stable() {
        let mut mgr = JobManager::new();
        let (j1, s1) = mgr.create(2, 10.0, Aggregation::Commitment, SimTime::ZERO);
        mgr.record_result(j1, s1[0].id, b"x").unwrap();
        mgr.record_result(j1, s1[1].id, b"y").unwrap();
        let (j2, s2) = mgr.create(2, 10.0, Aggregation::Commitment, SimTime::ZERO);
        mgr.record_result(j2, s2[0].id, b"y").unwrap();
        mgr.record_result(j2, s2[1].id, b"x").unwrap();
        let r1 = mgr.aggregate(j1).unwrap();
        let r2 = mgr.aggregate(j2).unwrap();
        assert_ne!(r1, r2, "swapped chunk order changes the commitment");
        assert_eq!(mgr.aggregate(j1).unwrap(), r1, "stable");
    }

    #[test]
    fn incomplete_jobs_do_not_aggregate() {
        let mut mgr = JobManager::new();
        let (job, specs) = mgr.create(2, 10.0, Aggregation::Concat, SimTime::ZERO);
        mgr.record_result(job, specs[0].id, b"A").unwrap();
        assert_eq!(mgr.aggregate(job), Err(JobError::Incomplete));
        assert_eq!(mgr.job(job).unwrap().missing(), vec![specs[1].id]);
        assert!((mgr.job(job).unwrap().progress() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_results_rejected_idempotent_accepted() {
        let mut mgr = JobManager::new();
        let (job, specs) = mgr.create(1, 10.0, Aggregation::Concat, SimTime::ZERO);
        mgr.record_result(job, specs[0].id, b"X").unwrap();
        assert_eq!(mgr.record_result(job, specs[0].id, b"X"), Ok(()), "idempotent");
        assert_eq!(mgr.record_result(job, specs[0].id, b"Y"), Err(JobError::ConflictingResult));
    }

    #[test]
    fn wrong_ids_rejected() {
        let mut mgr = JobManager::new();
        let (job, _) = mgr.create(1, 10.0, Aggregation::Sum, SimTime::ZERO);
        assert_eq!(mgr.record_result(JobId(99), TaskId(0), b""), Err(JobError::UnknownJob));
        assert_eq!(mgr.record_result(job, TaskId(999), b""), Err(JobError::UnknownTask));
        assert_eq!(mgr.aggregate(JobId(99)), Err(JobError::UnknownJob));
    }

    #[test]
    fn malformed_numeric_rejected() {
        let mut mgr = JobManager::new();
        let (job, specs) = mgr.create(1, 10.0, Aggregation::Sum, SimTime::ZERO);
        mgr.record_result(job, specs[0].id, b"short").unwrap();
        assert_eq!(mgr.aggregate(job), Err(JobError::MalformedNumeric));
        let (job2, specs2) = mgr.create(1, 10.0, Aggregation::Sum, SimTime::ZERO);
        mgr.record_result(job2, specs2[0].id, &f64::NAN.to_be_bytes()).unwrap();
        assert_eq!(mgr.aggregate(job2), Err(JobError::MalformedNumeric));
    }

    #[test]
    fn task_ids_are_globally_unique_across_jobs() {
        let mut mgr = JobManager::new();
        let (_, s1) = mgr.create(3, 10.0, Aggregation::Sum, SimTime::ZERO);
        let (_, s2) = mgr.create(3, 10.0, Aggregation::Sum, SimTime::ZERO);
        let mut all: Vec<u64> = s1.iter().chain(&s2).map(|s| s.id.0).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    #[should_panic]
    fn empty_job_rejected() {
        JobManager::new().create(0, 10.0, Aggregation::Sum, SimTime::ZERO);
    }
}
