//! # vc-cloud — vehicular cloud orchestration
//!
//! The paper's primary subject: pooling the under-utilized resources of
//! vehicles into clouds, across the three architectures of Fig. 4, with the
//! management machinery §III-A/§V-A calls for:
//!
//! * [`task`] / [`scheduler`] — divisible compute tasks, placement against
//!   duration-of-stay estimates, progress, deadlines, departures
//! * [`stay`] — pessimistic / optimistic / kinematic stay estimators (E6)
//! * [`replication`] — Merkle-committed file replication & repair (E7)
//! * [`arch`] — stationary, infrastructure-based, and dynamic clouds over a
//!   live scenario (E2/E3)
//! * [`emergency`] — operating modes and V2V gossip mode switching (E3)
//! * [`pipeline`] — Fig. 3's secure question chain wired end to end
//!
//! ## Example
//!
//! ```
//! use vc_cloud::prelude::*;
//! use vc_sim::scenario::ScenarioBuilder;
//!
//! let mut b = ScenarioBuilder::new();
//! b.seed(1).vehicles(20);
//! let mut cloud = CloudSim::new(
//!     b.parking_lot(),
//!     ArchitectureKind::Stationary,
//!     SchedulerConfig::default(),
//!     Kinematic,
//! );
//! cloud.submit_batch(5, 50.0, None);
//! cloud.run_ticks(100);
//! assert_eq!(cloud.scheduler().stats().completed, 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod directory;
pub mod emergency;
pub mod handover;
pub mod incentive;
pub mod jobs;
pub mod offload;
pub mod pipeline;
pub mod replication;
pub mod scheduler;
pub mod stay;
pub mod task;
pub mod verify;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::arch::{hosts_of, membership, ArchitectureKind, CloudSim, Membership};
    pub use crate::directory::{Requirement, Reservation, ResourceDirectory};
    pub use crate::emergency::{ModeManager, OperatingMode};
    pub use crate::handover::{open_checkpoint, seal_checkpoint, Checkpoint, SealedCheckpoint};
    pub use crate::incentive::{
        transfer as credit_transfer, CreditBank, CreditError, CreditNote, Endorsement,
    };
    pub use crate::jobs::{Aggregation, Job, JobError, JobId, JobManager, JobResult};
    pub use crate::offload::{
        decide as offload_decide, expected_latency, OffloadContext, OffloadTarget, OffloadTask,
    };
    pub use crate::pipeline::{PipelineError, SecurePipeline, VehicleCredentials};
    pub use crate::replication::{
        analytic_availability, FileId, PlacementStrategy, ReplicaHost, ReplicatedFile,
        ReplicationManager,
    };
    pub use crate::scheduler::{
        HandoverPolicy, HostInfo, PlacementPolicy, Scheduler, SchedulerConfig, SchedulerStats,
    };
    pub use crate::stay::{HostDynamics, Kinematic, Optimistic, Pessimistic, StayEstimator};
    pub use crate::task::{TaskId, TaskRecord, TaskSpec, TaskStatus};
    pub use crate::verify::{adjudicate, honest_digest, Adjudication, ResultReceipt};
}
