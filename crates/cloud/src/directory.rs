//! The v-cloud resource directory (paper §V-A).
//!
//! "To allocate [a] computing task to a vehicle, we have to consider …
//! what kind of sensors this vehicle has, if the automation level [is]
//! suitable …". The directory is the broker-side inventory of lendable
//! resources: registration, requirement queries, and reservation
//! bookkeeping so concurrent allocations cannot oversubscribe a host.

use std::collections::BTreeMap;
use vc_sim::node::{Resources, SaeLevel, SensorSuite, VehicleId};

/// What a task needs from a host.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Requirement {
    /// Minimum free compute, GFLOPS.
    pub min_cpu_gflops: f64,
    /// Minimum free storage, GB.
    pub min_storage_gb: f64,
    /// Minimum SAE automation level (None = any).
    pub min_automation: Option<SaeLevel>,
    /// Required sensors (subset check).
    pub sensors: SensorSuite,
}

impl Requirement {
    /// A pure-compute requirement.
    pub fn compute(min_cpu_gflops: f64) -> Requirement {
        Requirement { min_cpu_gflops, ..Default::default() }
    }

    fn sensors_satisfied(&self, have: SensorSuite) -> bool {
        (!self.sensors.camera || have.camera)
            && (!self.sensors.lidar || have.lidar)
            && (!self.sensors.radar || have.radar)
            && (!self.sensors.infrared || have.infrared)
            && (!self.sensors.gnss || have.gnss)
    }
}

/// One registered lender with live free-capacity tracking.
#[derive(Debug, Clone)]
struct Entry {
    resources: Resources,
    automation: SaeLevel,
    reserved_cpu: f64,
    reserved_storage: f64,
}

/// A reservation handle returned by [`ResourceDirectory::reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// The host the reservation is on.
    pub host: VehicleId,
    /// Reservation id (needed to release).
    pub id: u64,
}

/// The broker-side inventory of lendable resources.
#[derive(Debug, Default)]
pub struct ResourceDirectory {
    entries: BTreeMap<VehicleId, Entry>,
    reservations: BTreeMap<u64, (VehicleId, f64, f64)>,
    next_reservation: u64,
}

impl ResourceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        ResourceDirectory::default()
    }

    /// Registers (or re-registers) a lender's offer.
    pub fn register(&mut self, host: VehicleId, resources: Resources, automation: SaeLevel) {
        self.entries.insert(
            host,
            Entry { resources, automation, reserved_cpu: 0.0, reserved_storage: 0.0 },
        );
    }

    /// Withdraws a lender (departure); its reservations are dropped.
    pub fn withdraw(&mut self, host: VehicleId) {
        self.entries.remove(&host);
        self.reservations.retain(|_, (h, _, _)| *h != host);
    }

    /// Number of registered lenders.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no lender is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free compute on a host, GFLOPS (0 for unknown hosts).
    pub fn free_cpu(&self, host: VehicleId) -> f64 {
        self.entries.get(&host).map_or(0.0, |e| (e.resources.cpu_gflops - e.reserved_cpu).max(0.0))
    }

    /// Free storage on a host, GB (0 for unknown hosts).
    pub fn free_storage(&self, host: VehicleId) -> f64 {
        self.entries
            .get(&host)
            .map_or(0.0, |e| (e.resources.storage_gb - e.reserved_storage).max(0.0))
    }

    /// All hosts currently satisfying `req`, in id order.
    pub fn query(&self, req: &Requirement) -> Vec<VehicleId> {
        self.entries
            .iter()
            .filter(|(_, e)| {
                (e.resources.cpu_gflops - e.reserved_cpu) >= req.min_cpu_gflops
                    && (e.resources.storage_gb - e.reserved_storage) >= req.min_storage_gb
                    && req.min_automation.is_none_or(|min| e.automation >= min)
                    && req.sensors_satisfied(e.resources.sensors)
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Reserves capacity on a specific host; `None` when it cannot satisfy
    /// the amounts.
    pub fn reserve(
        &mut self,
        host: VehicleId,
        cpu_gflops: f64,
        storage_gb: f64,
    ) -> Option<Reservation> {
        let entry = self.entries.get_mut(&host)?;
        if entry.resources.cpu_gflops - entry.reserved_cpu < cpu_gflops
            || entry.resources.storage_gb - entry.reserved_storage < storage_gb
        {
            return None;
        }
        entry.reserved_cpu += cpu_gflops;
        entry.reserved_storage += storage_gb;
        let id = self.next_reservation;
        self.next_reservation += 1;
        self.reservations.insert(id, (host, cpu_gflops, storage_gb));
        Some(Reservation { host, id })
    }

    /// Releases a reservation (idempotent).
    pub fn release(&mut self, reservation: Reservation) {
        if let Some((host, cpu, storage)) = self.reservations.remove(&reservation.id) {
            if let Some(entry) = self.entries.get_mut(&host) {
                entry.reserved_cpu = (entry.reserved_cpu - cpu).max(0.0);
                entry.reserved_storage = (entry.reserved_storage - storage).max(0.0);
            }
        }
    }

    /// Total free compute across the cloud, GFLOPS.
    pub fn total_free_cpu(&self) -> f64 {
        self.entries.keys().map(|&h| self.free_cpu(h)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sensors() -> SensorSuite {
        SensorSuite::FULL
    }

    fn dir_with(n: usize) -> ResourceDirectory {
        let mut dir = ResourceDirectory::new();
        for i in 0..n {
            let resources = if i % 2 == 0 { Resources::high_end() } else { Resources::modest() };
            let automation = if i % 2 == 0 { SaeLevel::L4 } else { SaeLevel::L2 };
            dir.register(VehicleId(i as u32), resources, automation);
        }
        dir
    }

    #[test]
    fn query_filters_on_cpu_and_automation() {
        let dir = dir_with(6);
        let req = Requirement {
            min_cpu_gflops: 100.0,
            min_automation: Some(SaeLevel::L4),
            ..Default::default()
        };
        let hits = dir.query(&req);
        assert_eq!(hits, vec![VehicleId(0), VehicleId(2), VehicleId(4)]);
    }

    #[test]
    fn query_filters_on_sensors() {
        let dir = dir_with(4);
        let req = Requirement {
            sensors: SensorSuite { lidar: true, ..SensorSuite::default() },
            ..Default::default()
        };
        // Only high-end (even) vehicles carry lidar.
        assert_eq!(dir.query(&req), vec![VehicleId(0), VehicleId(2)]);
        let req_full = Requirement { sensors: full_sensors(), ..Default::default() };
        assert_eq!(dir.query(&req_full).len(), 2);
    }

    #[test]
    fn reservation_reduces_free_capacity() {
        let mut dir = dir_with(2);
        let before = dir.free_cpu(VehicleId(0));
        let r = dir.reserve(VehicleId(0), 150.0, 100.0).expect("fits");
        assert!((dir.free_cpu(VehicleId(0)) - (before - 150.0)).abs() < 1e-9);
        // A requirement that no longer fits skips the host.
        let req = Requirement::compute(before - 100.0);
        assert!(!dir.query(&req).contains(&VehicleId(0)));
        dir.release(r);
        assert!((dir.free_cpu(VehicleId(0)) - before).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_rejected() {
        let mut dir = dir_with(1);
        let total = dir.free_cpu(VehicleId(0));
        assert!(dir.reserve(VehicleId(0), total, 0.0).is_some());
        assert!(dir.reserve(VehicleId(0), 1.0, 0.0).is_none(), "no capacity left");
        assert!(dir.reserve(VehicleId(9), 1.0, 0.0).is_none(), "unknown host");
    }

    #[test]
    fn release_is_idempotent() {
        let mut dir = dir_with(1);
        let r = dir.reserve(VehicleId(0), 10.0, 0.0).unwrap();
        dir.release(r);
        dir.release(r);
        assert!((dir.free_cpu(VehicleId(0)) - Resources::high_end().cpu_gflops).abs() < 1e-9);
    }

    #[test]
    fn withdraw_drops_host_and_reservations() {
        let mut dir = dir_with(2);
        let _r = dir.reserve(VehicleId(0), 10.0, 0.0).unwrap();
        dir.withdraw(VehicleId(0));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.free_cpu(VehicleId(0)), 0.0);
        // Re-registration starts clean.
        dir.register(VehicleId(0), Resources::modest(), SaeLevel::L3);
        assert!((dir.free_cpu(VehicleId(0)) - Resources::modest().cpu_gflops).abs() < 1e-9);
    }

    #[test]
    fn total_free_cpu_tracks() {
        let mut dir = dir_with(4);
        let before = dir.total_free_cpu();
        dir.reserve(VehicleId(0), 50.0, 0.0).unwrap();
        assert!((dir.total_free_cpu() - (before - 50.0)).abs() < 1e-9);
    }
}
