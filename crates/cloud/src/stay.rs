//! Duration-of-stay estimation (paper §III-A).
//!
//! "When allocating tasks for a vehicle in a group, the problem is how to
//! estimate the duration of stay of this vehicle. If under-estimated, the
//! computing resources will be under-utilized. If over-estimated, the
//! vehicle may not be able to finish the task before leaving the group."
//! Experiment E6 sweeps these estimators against ground truth.

use vc_sim::geom::Point;

/// What the estimator sees about a candidate host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostDynamics {
    /// Host position.
    pub pos: Point,
    /// Host velocity, m/s.
    pub vel: Point,
    /// Center of the group/coverage the host must remain inside.
    pub group_center: Point,
    /// Radius of that group/coverage, meters.
    pub group_radius: f64,
    /// `true` for parked hosts (stationary clouds).
    pub parked: bool,
}

/// A duration-of-stay estimator: how many more seconds will this host remain
/// reachable by the cloud?
pub trait StayEstimator {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// Estimated remaining stay, seconds (may be `f64::INFINITY` for parked
    /// hosts).
    fn estimate(&self, host: &HostDynamics) -> f64;
}

/// Assumes every mobile host leaves almost immediately — maximally cautious,
/// so long tasks never get placed on moving hosts (under-utilization arm of
/// the paper's trade-off).
#[derive(Debug, Default)]
pub struct Pessimistic;

impl StayEstimator for Pessimistic {
    fn name(&self) -> &'static str {
        "pessimistic"
    }

    fn estimate(&self, host: &HostDynamics) -> f64 {
        if host.parked {
            f64::INFINITY
        } else {
            30.0
        }
    }
}

/// Assumes every host stays a long time — tasks get placed anywhere and die
/// with departing hosts (over-estimation arm).
#[derive(Debug, Default)]
pub struct Optimistic;

impl StayEstimator for Optimistic {
    fn name(&self) -> &'static str {
        "optimistic"
    }

    fn estimate(&self, host: &HostDynamics) -> f64 {
        if host.parked {
            f64::INFINITY
        } else {
            600.0
        }
    }
}

/// Kinematic prediction: time until the host's straight-line trajectory
/// exits the group disk. The informed middle ground.
#[derive(Debug, Default)]
pub struct Kinematic;

impl StayEstimator for Kinematic {
    fn name(&self) -> &'static str {
        "kinematic"
    }

    fn estimate(&self, host: &HostDynamics) -> f64 {
        if host.parked {
            return f64::INFINITY;
        }
        time_to_exit_disk(host.pos, host.vel, host.group_center, host.group_radius)
    }
}

/// Time until a point moving at constant velocity exits a disk, seconds.
/// Returns a large-but-finite horizon for (near-)stationary points inside,
/// and 0 for points already outside.
pub fn time_to_exit_disk(pos: Point, vel: Point, center: Point, radius: f64) -> f64 {
    const HORIZON_S: f64 = 3_600.0;
    let rel = pos - center;
    if rel.norm() >= radius {
        return 0.0;
    }
    let speed_sq = vel.dot(vel);
    if speed_sq < 1e-9 {
        return HORIZON_S;
    }
    // Solve |rel + t*vel|^2 = radius^2 for the positive root.
    let b = rel.dot(vel);
    let c = rel.dot(rel) - radius * radius;
    let disc = b * b - speed_sq * c;
    if disc <= 0.0 {
        return HORIZON_S;
    }
    let t = (-b + disc.sqrt()) / speed_sq;
    t.clamp(0.0, HORIZON_S)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(pos: (f64, f64), vel: (f64, f64)) -> HostDynamics {
        HostDynamics {
            pos: Point::new(pos.0, pos.1),
            vel: Point::new(vel.0, vel.1),
            group_center: Point::new(0.0, 0.0),
            group_radius: 100.0,
            parked: false,
        }
    }

    #[test]
    fn exit_time_straight_out() {
        // At center, moving 10 m/s: exits the 100 m disk in 10 s.
        let t = time_to_exit_disk(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 0.0),
            100.0,
        );
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exit_time_off_center() {
        // At (50,0) moving +x at 10 m/s: 50 m to the rim, 5 s.
        let t = time_to_exit_disk(
            Point::new(50.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 0.0),
            100.0,
        );
        assert!((t - 5.0).abs() < 1e-9);
        // Moving -x: 150 m to the far rim, 15 s.
        let t2 = time_to_exit_disk(
            Point::new(50.0, 0.0),
            Point::new(-10.0, 0.0),
            Point::new(0.0, 0.0),
            100.0,
        );
        assert!((t2 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn outside_is_zero_and_still_is_horizon() {
        assert_eq!(
            time_to_exit_disk(
                Point::new(200.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 0.0),
                100.0
            ),
            0.0
        );
        let t = time_to_exit_disk(
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            100.0,
        );
        assert_eq!(t, 3600.0);
    }

    #[test]
    fn parked_hosts_stay_forever() {
        let mut h = host((0.0, 0.0), (20.0, 0.0));
        h.parked = true;
        assert_eq!(Pessimistic.estimate(&h), f64::INFINITY);
        assert_eq!(Optimistic.estimate(&h), f64::INFINITY);
        assert_eq!(Kinematic.estimate(&h), f64::INFINITY);
    }

    #[test]
    fn estimator_ordering_for_fast_leavers() {
        // A vehicle crossing the group quickly: kinematic should see a short
        // stay, optimistic a long one.
        let h = host((80.0, 0.0), (20.0, 0.0)); // 1 s to the rim
        let kin = Kinematic.estimate(&h);
        assert!((kin - 1.0).abs() < 1e-9);
        assert!(Optimistic.estimate(&h) > kin);
        assert!(Pessimistic.estimate(&h) > kin, "pessimistic floor is 30 s");
    }

    #[test]
    fn estimator_ordering_for_lingerers() {
        // Slow vehicle near the center: kinematic sees a long stay.
        let h = host((0.0, 0.0), (1.0, 0.0)); // 100 s to the rim
        let kin = Kinematic.estimate(&h);
        assert!((kin - 100.0).abs() < 1e-9);
        assert!(Pessimistic.estimate(&h) < kin);
    }

    #[test]
    fn names() {
        assert_eq!(Pessimistic.name(), "pessimistic");
        assert_eq!(Optimistic.name(), "optimistic");
        assert_eq!(Kinematic.name(), "kinematic");
    }
}
