//! File replication for availability (paper §III-A).
//!
//! "An important issue is determining how many copies of a shared file
//! should be distributed in v-cloud so that other vehicles can keep
//! accessing this file even if many vehicles are offline at the same time."
//! Files are chunked under a Merkle root (integrity survives any host), and
//! replicas are placed either randomly or on stability-ranked hosts.
//! Experiment E7 sweeps the replica count against churn.

use std::collections::BTreeMap;
use vc_crypto::merkle::MerkleTree;
use vc_crypto::sha256::Digest;
use vc_sim::node::VehicleId;
use vc_sim::rng::SimRng;

/// Identifier of a shared file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// How replica hosts are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Uniformly random among candidates.
    Random,
    /// Prefer hosts with the longest expected stay.
    StabilityRanked,
}

/// A candidate replica host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaHost {
    /// The vehicle.
    pub id: VehicleId,
    /// Expected remaining stay, seconds.
    pub stay_estimate_s: f64,
}

/// Metadata for one replicated file.
#[derive(Debug, Clone)]
pub struct ReplicatedFile {
    /// The file id.
    pub id: FileId,
    /// Merkle root over the chunks — any holder can prove chunk integrity.
    pub root: Digest,
    /// Number of chunks.
    pub chunk_count: usize,
    /// Current replica holders.
    pub holders: Vec<VehicleId>,
}

/// The replication manager.
#[derive(Debug, Default)]
pub struct ReplicationManager {
    files: BTreeMap<FileId, ReplicatedFile>,
}

impl ReplicationManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        ReplicationManager::default()
    }

    /// Publishes a file: chunks it, builds the Merkle commitment, and places
    /// `replicas` copies among `candidates` per the strategy.
    ///
    /// Returns the file record. Fewer holders than requested are placed when
    /// candidates run short.
    ///
    /// # Panics
    ///
    /// Panics if `content` is empty or `replicas` is zero.
    pub fn publish(
        &mut self,
        id: FileId,
        content: &[u8],
        replicas: usize,
        candidates: &[ReplicaHost],
        strategy: PlacementStrategy,
        rng: &mut SimRng,
    ) -> &ReplicatedFile {
        assert!(!content.is_empty(), "cannot publish an empty file");
        assert!(replicas > 0, "need at least one replica");
        const CHUNK: usize = 4096;
        let chunks: Vec<&[u8]> = content.chunks(CHUNK).collect();
        let tree = MerkleTree::from_leaves(&chunks);
        let holders = place(replicas, candidates, strategy, rng);
        let file = ReplicatedFile { id, root: tree.root(), chunk_count: chunks.len(), holders };
        self.files.insert(id, file);
        self.files.get(&id).expect("just inserted")
    }

    /// The record for a file.
    pub fn file(&self, id: FileId) -> Option<&ReplicatedFile> {
        self.files.get(&id)
    }

    /// Whether the file is currently readable: at least one holder online.
    pub fn is_available(&self, id: FileId, online: &dyn Fn(VehicleId) -> bool) -> bool {
        self.files.get(&id).is_some_and(|f| f.holders.iter().any(|&h| online(h)))
    }

    /// Re-replicates a file back up to `target` holders, choosing new hosts
    /// among `candidates` that are not already holders. Returns how many new
    /// replicas were created.
    pub fn repair(
        &mut self,
        id: FileId,
        target: usize,
        online: &dyn Fn(VehicleId) -> bool,
        candidates: &[ReplicaHost],
        strategy: PlacementStrategy,
        rng: &mut SimRng,
    ) -> usize {
        let Some(file) = self.files.get_mut(&id) else {
            return 0;
        };
        // Drop offline holders from the record (they may come back, but the
        // conservative manager treats them as lost).
        file.holders.retain(|&h| online(h));
        if file.holders.len() >= target {
            return 0;
        }
        let fresh: Vec<ReplicaHost> = candidates
            .iter()
            .filter(|c| online(c.id) && !file.holders.contains(&c.id))
            .copied()
            .collect();
        let add = place(target - file.holders.len(), &fresh, strategy, rng);
        let added = add.len();
        file.holders.extend(add);
        added
    }

    /// Number of files tracked.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no file is tracked.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

fn place(
    replicas: usize,
    candidates: &[ReplicaHost],
    strategy: PlacementStrategy,
    rng: &mut SimRng,
) -> Vec<VehicleId> {
    match strategy {
        PlacementStrategy::Random => {
            let picks = rng.sample_indices(candidates.len(), replicas);
            picks.into_iter().map(|i| candidates[i].id).collect()
        }
        PlacementStrategy::StabilityRanked => {
            let mut sorted: Vec<&ReplicaHost> = candidates.iter().collect();
            sorted.sort_by(|a, b| {
                b.stay_estimate_s
                    .partial_cmp(&a.stay_estimate_s)
                    .expect("finite stays")
                    .then(a.id.cmp(&b.id))
            });
            sorted.into_iter().take(replicas).map(|h| h.id).collect()
        }
    }
}

/// Analytic availability of a file with `replicas` independent holders each
/// offline with probability `p_offline`: `1 - p^r`. The baseline E7 plots
/// simulated availability against.
pub fn analytic_availability(replicas: usize, p_offline: f64) -> f64 {
    1.0 - p_offline.clamp(0.0, 1.0).powi(replicas as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<ReplicaHost> {
        (0..n)
            .map(|i| ReplicaHost { id: VehicleId(i as u32), stay_estimate_s: (i * 10) as f64 })
            .collect()
    }

    #[test]
    fn publish_places_replicas() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(1);
        let f = mgr.publish(
            FileId(1),
            &[7u8; 10_000],
            3,
            &hosts(10),
            PlacementStrategy::Random,
            &mut rng,
        );
        assert_eq!(f.holders.len(), 3);
        assert_eq!(f.chunk_count, 3, "10 KB in 4 KB chunks");
        // Distinct holders.
        let mut hs = f.holders.clone();
        hs.sort();
        hs.dedup();
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn stability_ranked_picks_longest_stayers() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(2);
        let f = mgr.publish(
            FileId(1),
            b"data",
            2,
            &hosts(10),
            PlacementStrategy::StabilityRanked,
            &mut rng,
        );
        // Hosts 9 and 8 have the longest stays.
        assert!(f.holders.contains(&VehicleId(9)));
        assert!(f.holders.contains(&VehicleId(8)));
    }

    #[test]
    fn availability_follows_holders() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(3);
        mgr.publish(FileId(1), b"data", 2, &hosts(4), PlacementStrategy::StabilityRanked, &mut rng);
        // Holders are 3 and 2.
        assert!(mgr.is_available(FileId(1), &|v| v == VehicleId(3)));
        assert!(!mgr.is_available(FileId(1), &|_| false));
        assert!(!mgr.is_available(FileId(2), &|_| true), "unknown file is unavailable");
    }

    #[test]
    fn repair_restores_replication() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(4);
        mgr.publish(FileId(1), b"data", 3, &hosts(3), PlacementStrategy::StabilityRanked, &mut rng);
        // Hosts 0..3 hold it; now 0 and 1 go offline, new candidates 5..10 appear.
        let online = |v: VehicleId| v.0 >= 2;
        let new_candidates = hosts(10);
        let added = mgr.repair(
            FileId(1),
            3,
            &online,
            &new_candidates,
            PlacementStrategy::StabilityRanked,
            &mut rng,
        );
        assert_eq!(added, 2);
        let f = mgr.file(FileId(1)).unwrap();
        assert_eq!(f.holders.len(), 3);
        assert!(f.holders.iter().all(|&h| online(h)));
    }

    #[test]
    fn repair_noop_when_healthy() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(5);
        mgr.publish(FileId(1), b"data", 2, &hosts(5), PlacementStrategy::Random, &mut rng);
        let added =
            mgr.repair(FileId(1), 2, &|_| true, &hosts(5), PlacementStrategy::Random, &mut rng);
        assert_eq!(added, 0);
        assert_eq!(
            mgr.repair(FileId(9), 2, &|_| true, &hosts(5), PlacementStrategy::Random, &mut rng),
            0
        );
    }

    #[test]
    fn fewer_candidates_than_replicas() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(6);
        let f = mgr.publish(FileId(1), b"data", 5, &hosts(2), PlacementStrategy::Random, &mut rng);
        assert_eq!(f.holders.len(), 2, "placed what was possible");
    }

    #[test]
    fn roots_commit_to_content() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(7);
        let r1 = mgr
            .publish(FileId(1), b"content-a", 1, &hosts(3), PlacementStrategy::Random, &mut rng)
            .root;
        let r2 = mgr
            .publish(FileId(2), b"content-b", 1, &hosts(3), PlacementStrategy::Random, &mut rng)
            .root;
        assert_ne!(r1, r2);
    }

    #[test]
    fn analytic_curve_shape() {
        assert_eq!(analytic_availability(1, 0.0), 1.0);
        assert!((analytic_availability(1, 0.3) - 0.7).abs() < 1e-12);
        assert!((analytic_availability(3, 0.3) - (1.0 - 0.027)).abs() < 1e-12);
        // More replicas never hurt.
        for r in 1..10 {
            assert!(analytic_availability(r + 1, 0.4) >= analytic_availability(r, 0.4));
        }
    }

    #[test]
    #[should_panic]
    fn empty_file_rejected() {
        let mut mgr = ReplicationManager::new();
        let mut rng = SimRng::seed_from(8);
        mgr.publish(FileId(1), b"", 1, &hosts(1), PlacementStrategy::Random, &mut rng);
    }
}
