//! The secure v-cloud pipeline of the paper's Fig. 3.
//!
//! Fig. 3 frames secure cloud participation as a question chain the system
//! answers for every interaction:
//!
//! 1. *Does the vehicle have a valid identity?* — pseudonym authentication
//! 2. *What resources can be accessed by the vehicle?* — service tokens
//! 3. *What actions are allowed on the data?* — sticky-policy enforcement
//! 4. *Do I need to verify data trustworthiness?* — validator stack
//!
//! [`SecurePipeline`] wires the four crates into that chain; the quickstart
//! example and integration tests drive it end to end.

use vc_access::credential::{
    prove_possession, AttributeCredential, AttributeIssuer, Attributes, PossessionProof,
};
use vc_access::package::{challenge_bytes, AccessError, DataPackage, TpdEnforcer};
use vc_access::policy::{Action, Context};
use vc_auth::identity::{AuthError, RealIdentity, TrustedAuthority};
use vc_auth::pseudonym::{PseudonymMessage, PseudonymRegistry, PseudonymWallet};
use vc_auth::replay::{ReplayGuard, ReplayVerdict};
use vc_auth::token::{ServiceId, ServiceToken, TokenGateway};
use vc_crypto::schnorr::SigningKey;
use vc_crypto::sha256::sha256;
use vc_sim::node::VehicleId;
use vc_sim::time::{SimDuration, SimTime};
use vc_trust::prelude::{
    classify, ClassifierConfig, Report, ReputationStore, Validator, WeightedVote,
};

/// Everything a registered vehicle holds after provisioning.
pub struct VehicleCredentials {
    /// The pseudonym wallet for message authentication.
    pub wallet: PseudonymWallet,
    /// Attribute credential for privacy-preserving authorization.
    pub attribute_credential: AttributeCredential,
    /// The key the attribute credential is bound to.
    pub attribute_key: SigningKey,
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Authentication failed.
    Auth(AuthError),
    /// Authorization / enforcement failed.
    Access(AccessError),
    /// Replay detected.
    Replay,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Auth(e) => write!(f, "authentication: {e}"),
            PipelineError::Access(e) => write!(f, "authorization: {e}"),
            PipelineError::Replay => f.write_str("replay detected"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The assembled secure v-cloud service stack.
pub struct SecurePipeline {
    ta: TrustedAuthority,
    registry: PseudonymRegistry,
    gateway: TokenGateway,
    issuer: AttributeIssuer,
    tpd: TpdEnforcer,
    replay: ReplayGuard,
    reputation: ReputationStore,
    replay_window: SimDuration,
}

impl SecurePipeline {
    /// Builds the stack from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut ta_seed = seed.to_vec();
        ta_seed.extend_from_slice(b"-ta");
        let mut gw_seed = seed.to_vec();
        gw_seed.extend_from_slice(b"-gateway");
        let mut is_seed = seed.to_vec();
        is_seed.extend_from_slice(b"-issuer");
        let mut tpd_seed = seed.to_vec();
        tpd_seed.extend_from_slice(b"-tpd");
        SecurePipeline {
            ta: TrustedAuthority::new(&ta_seed),
            registry: PseudonymRegistry::new(),
            gateway: TokenGateway::new(&gw_seed, SimDuration::from_secs(300)),
            issuer: AttributeIssuer::new(&is_seed),
            tpd: TpdEnforcer::new(&tpd_seed),
            replay: ReplayGuard::new(SimDuration::from_secs(5), 4096),
            reputation: ReputationStore::new(),
            replay_window: SimDuration::from_secs(5),
        }
    }

    /// The trusted authority (for registration-time operations).
    pub fn ta(&self) -> &TrustedAuthority {
        &self.ta
    }

    /// The TPD enforcement public share — owners seal packages to this.
    pub fn tpd_share(&self) -> vc_crypto::dh::PublicShare {
        self.tpd.public_share()
    }

    /// Registers and provisions a vehicle: identity registration, a
    /// pseudonym wallet, and an attribute credential.
    ///
    /// # Errors
    ///
    /// Propagates wallet-issuance failures (unknown/revoked identity).
    pub fn provision(
        &mut self,
        vehicle: VehicleId,
        attributes: Attributes,
        now: SimTime,
    ) -> Result<VehicleCredentials, PipelineError> {
        let identity = RealIdentity::for_vehicle(vehicle);
        self.ta.register(identity.clone(), vehicle);
        let mut seed = b"wallet-".to_vec();
        seed.extend_from_slice(identity.0.as_bytes());
        let wallet = self
            .registry
            .issue_wallet(&self.ta, &identity, 16, now, now + SimDuration::from_secs(86_400), &seed)
            .map_err(PipelineError::Auth)?;
        let mut akey_seed = b"attr-".to_vec();
        akey_seed.extend_from_slice(identity.0.as_bytes());
        let attribute_key = SigningKey::from_seed(&akey_seed);
        let attribute_credential = self.issuer.issue(
            attributes,
            attribute_key.verifying_key(),
            now + SimDuration::from_secs(86_400),
        );
        Ok(VehicleCredentials { wallet, attribute_credential, attribute_key })
    }

    /// Fig. 3 question 1+2: authenticates a pseudonym-signed hello and
    /// grants a service token.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Auth`] on any authentication failure;
    /// [`PipelineError::Replay`] on a replayed hello.
    pub fn admit(
        &mut self,
        hello: &PseudonymMessage,
        service: ServiceId,
        now: SimTime,
    ) -> Result<ServiceToken, PipelineError> {
        vc_auth::pseudonym::verify(
            hello,
            &self.ta.public_key(),
            self.registry.crl(),
            now,
            self.replay_window,
        )
        .map_err(PipelineError::Auth)?;
        let digest = sha256(&[&hello.payload[..], &hello.signature.to_bytes()[..]].concat());
        match self.replay.check(digest, hello.sent_at, now) {
            ReplayVerdict::Fresh => {}
            _ => return Err(PipelineError::Replay),
        }
        Ok(self.gateway.issue(hello.cert.id, service, now))
    }

    /// Fig. 3 question 3: authorizes an action on a data package through the
    /// TPD, given a valid token and an attribute proof.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Auth`] for an invalid token, [`PipelineError::Access`]
    /// when enforcement fails or denies.
    #[allow(clippy::too_many_arguments)]
    pub fn authorize(
        &mut self,
        package: &mut DataPackage,
        action: Action,
        token: &ServiceToken,
        service: ServiceId,
        proof: &PossessionProof,
        ambient: &Context,
    ) -> Result<Vec<u8>, PipelineError> {
        vc_auth::token::verify_token(token, &self.gateway.public_key(), service, ambient.now)
            .map_err(PipelineError::Auth)?;
        self.tpd
            .request_access(
                package,
                action,
                proof,
                &self.issuer.public_key(),
                ambient,
                token.holder,
            )
            .map_err(PipelineError::Access)
    }

    /// Fig. 3 question 4: validates reported event data before acting on it.
    /// Returns per-event (cluster centroid kind, trust score, decision).
    pub fn validate_reports(&mut self, reports: &[Report]) -> Vec<(usize, f64, bool)> {
        let clusters = classify(reports, &ClassifierConfig::default());
        clusters
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let score = WeightedVote.score(c, &self.reputation);
                (i, score, score >= 0.5)
            })
            .collect()
    }

    /// Feeds a confirmed ground-truth outcome back into reputation.
    pub fn record_outcome(&mut self, reporter: u64, was_correct: bool) {
        self.reputation.record(reporter, was_correct);
    }

    /// Helper: builds the access proof for a package at a time.
    pub fn make_proof(
        credentials: &VehicleCredentials,
        package_id: u64,
        now: SimTime,
    ) -> PossessionProof {
        prove_possession(
            &credentials.attribute_credential,
            &credentials.attribute_key,
            &challenge_bytes(package_id, now),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_access::policy::{Expr, Policy, Role};
    use vc_sim::geom::Point;
    use vc_sim::node::SaeLevel;

    fn attrs() -> Attributes {
        Attributes {
            role: Role::Storage,
            automation: SaeLevel::L4,
            storage_provider: true,
            compute_provider: true,
        }
    }

    #[test]
    fn full_chain_identity_to_data() {
        let mut pipeline = SecurePipeline::new(b"test-net");
        let now = SimTime::from_secs(10);
        let creds = pipeline.provision(VehicleId(1), attrs(), now).unwrap();

        // Q1/Q2: admission.
        let hello = creds.wallet.sign(b"hello cloud", now);
        let token = pipeline.admit(&hello, ServiceId(1), now).unwrap();

        // Owner publishes a package readable by Storage nodes.
        let owner = SigningKey::from_seed(b"owner");
        let policy = Policy::new().allow(Action::Read, Expr::HasRole(Role::Storage));
        let mut package =
            DataPackage::seal_new(42, b"map tiles", policy, &owner, &pipeline.tpd_share(), 7);

        // Q3: authorization.
        let ctx = Context::member_at(Point::new(0.0, 0.0), now);
        let proof = SecurePipeline::make_proof(&creds, 42, now);
        let data = pipeline
            .authorize(&mut package, Action::Read, &token, ServiceId(1), &proof, &ctx)
            .unwrap();
        assert_eq!(data, b"map tiles");
        assert_eq!(package.audit.len(), 1);
    }

    #[test]
    fn replayed_hello_rejected() {
        let mut pipeline = SecurePipeline::new(b"net");
        let now = SimTime::from_secs(10);
        let creds = pipeline.provision(VehicleId(2), attrs(), now).unwrap();
        let hello = creds.wallet.sign(b"hi", now);
        pipeline.admit(&hello, ServiceId(1), now).unwrap();
        assert_eq!(pipeline.admit(&hello, ServiceId(1), now), Err(PipelineError::Replay));
    }

    #[test]
    fn unprovisioned_vehicle_rejected() {
        let mut pipeline = SecurePipeline::new(b"net");
        let other = SecurePipeline::new(b"other-net");
        let now = SimTime::from_secs(10);
        // Credentials from a different trust domain.
        let mut foreign = other;
        let creds = foreign.provision(VehicleId(3), attrs(), now).unwrap();
        let hello = creds.wallet.sign(b"hi", now);
        match pipeline.admit(&hello, ServiceId(1), now) {
            Err(PipelineError::Auth(_)) => {}
            other => panic!("expected auth failure, got {other:?}"),
        }
    }

    #[test]
    fn wrong_service_token_rejected() {
        let mut pipeline = SecurePipeline::new(b"net");
        let now = SimTime::from_secs(10);
        let creds = pipeline.provision(VehicleId(4), attrs(), now).unwrap();
        let hello = creds.wallet.sign(b"hi", now);
        let token = pipeline.admit(&hello, ServiceId(1), now).unwrap();
        let owner = SigningKey::from_seed(b"owner");
        let policy = Policy::new().allow(Action::Read, Expr::True);
        let mut package = DataPackage::seal_new(1, b"x", policy, &owner, &pipeline.tpd_share(), 1);
        let ctx = Context::member_at(Point::new(0.0, 0.0), now);
        let proof = SecurePipeline::make_proof(&creds, 1, now);
        let res =
            pipeline.authorize(&mut package, Action::Read, &token, ServiceId(2), &proof, &ctx);
        assert!(matches!(res, Err(PipelineError::Auth(_))));
    }

    #[test]
    fn trust_validation_flags_minority_truth() {
        let mut pipeline = SecurePipeline::new(b"net");
        // Teach the pipeline who is reliable.
        for _ in 0..10 {
            pipeline.record_outcome(1, true);
            pipeline.record_outcome(2, false);
            pipeline.record_outcome(3, false);
        }
        let mk = |reporter: u64, claim: bool| Report {
            reporter,
            kind: vc_trust::report::EventKind::Accident,
            location: Point::new(0.0, 0.0),
            observed_at: SimTime::from_secs(1),
            claim,
            reporter_pos: Point::new(20.0, 0.0),
            reporter_speed: 10.0,
            path: vec![VehicleId(reporter as u32)],
        };
        let verdicts = pipeline.validate_reports(&[mk(1, true), mk(2, false), mk(3, false)]);
        assert_eq!(verdicts.len(), 1);
        let (_, score, decision) = verdicts[0];
        assert!(decision, "weighted vote should trust the reliable reporter (score {score})");
    }
}
