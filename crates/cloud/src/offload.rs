//! Task offloading decisions: on-board vs vehicular cloud vs cellular/
//! central cloud (paper §I).
//!
//! The paper's motivating claim: "conventional centralized approaches …
//! may not be able to quickly collect real-time information and disseminate
//! decisions due to jamming or inaccessibility of the Internet/cellular
//! network at the scene", while the v-cloud has "sufficient resources …
//! even during unexpected events". This module gives each vehicle the
//! latency model to pick a target per task — and experiment E13 sweeps cell
//! congestion to show the crossover.

use vc_sim::radio::{Cellular, Channel};
use vc_sim::rng::SimRng;

/// Where a task can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadTarget {
    /// The vehicle's own on-board unit.
    Local,
    /// A lender host in the vehicular cloud (1 V2V hop away).
    VehicularCloud,
    /// The central cloud over the cellular uplink.
    Cellular,
}

impl std::fmt::Display for OffloadTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OffloadTarget::Local => "local",
            OffloadTarget::VehicularCloud => "v-cloud",
            OffloadTarget::Cellular => "cellular",
        };
        f.write_str(s)
    }
}

/// Everything the decision needs to know about the moment.
#[derive(Debug, Clone)]
pub struct OffloadContext<'a> {
    /// Own on-board compute, GFLOPS.
    pub local_cpu_gflops: f64,
    /// Best lender host's compute in the current v-cloud, GFLOPS (None when
    /// no cloud is reachable).
    pub vcloud_cpu_gflops: Option<f64>,
    /// Contending transmitters around us (drives V2V latency).
    pub v2v_contenders: usize,
    /// The V2V channel.
    pub channel: &'a Channel,
    /// Cellular state.
    pub cellular: &'a Cellular,
    /// Concurrent users on the cell.
    pub cell_users: usize,
    /// The central datacenter's effective compute, GFLOPS (large).
    pub datacenter_cpu_gflops: f64,
}

/// A task's offload-relevant shape.
#[derive(Debug, Clone, Copy)]
pub struct OffloadTask {
    /// Compute demand, GFLOP.
    pub work_gflop: f64,
    /// Input bytes to ship.
    pub input_bytes: usize,
    /// Output bytes to return.
    pub output_bytes: usize,
}

/// Expected completion latency of `task` on `target`, seconds. `None` when
/// the target is unreachable.
pub fn expected_latency(
    task: &OffloadTask,
    target: OffloadTarget,
    ctx: &OffloadContext<'_>,
    rng: &mut SimRng,
) -> Option<f64> {
    match target {
        OffloadTarget::Local => Some(task.work_gflop / ctx.local_cpu_gflops.max(1e-9)),
        OffloadTarget::VehicularCloud => {
            let host = ctx.vcloud_cpu_gflops?;
            let up = ctx.channel.latency(ctx.v2v_contenders, task.input_bytes, rng).as_secs_f64();
            let down =
                ctx.channel.latency(ctx.v2v_contenders, task.output_bytes, rng).as_secs_f64();
            Some(up + task.work_gflop / host.max(1e-9) + down)
        }
        OffloadTarget::Cellular => {
            let rtt = ctx.cellular.rtt(ctx.cell_users, rng)?.as_secs_f64();
            // Serialization over the cell (10 Mb/s effective uplink).
            let xfer = (task.input_bytes + task.output_bytes) as f64 * 8.0 / 10_000_000.0;
            Some(rtt + xfer + task.work_gflop / ctx.datacenter_cpu_gflops.max(1e-9))
        }
    }
}

/// Picks the target with the lowest expected latency (ties break toward
/// Local, then VehicularCloud — no network beats a network at equal cost).
pub fn decide(task: &OffloadTask, ctx: &OffloadContext<'_>, rng: &mut SimRng) -> OffloadTarget {
    let candidates = [OffloadTarget::Local, OffloadTarget::VehicularCloud, OffloadTarget::Cellular];
    let mut best = OffloadTarget::Local;
    let mut best_latency = f64::INFINITY;
    for target in candidates {
        if let Some(latency) = expected_latency(task, target, ctx, rng) {
            if latency < best_latency - 1e-12 {
                best_latency = latency;
                best = target;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(channel: &'a Channel, cellular: &'a Cellular) -> OffloadContext<'a> {
        OffloadContext {
            local_cpu_gflops: 20.0,
            vcloud_cpu_gflops: Some(200.0),
            v2v_contenders: 5,
            channel,
            cellular,
            cell_users: 10,
            datacenter_cpu_gflops: 100_000.0,
        }
    }

    fn task(work: f64) -> OffloadTask {
        OffloadTask { work_gflop: work, input_bytes: 100_000, output_bytes: 10_000 }
    }

    #[test]
    fn tiny_tasks_stay_local() {
        let channel = Channel::dsrc();
        let cellular = Cellular::healthy();
        let mut rng = SimRng::seed_from(1);
        // 1 GFLOP: 0.05 s locally; any network path costs more than that in
        // transfer alone (100 KB at 6 Mb/s ≈ 0.13 s).
        assert_eq!(decide(&task(1.0), &ctx(&channel, &cellular), &mut rng), OffloadTarget::Local);
    }

    #[test]
    fn heavy_tasks_offload() {
        let channel = Channel::dsrc();
        let cellular = Cellular::healthy();
        let mut rng = SimRng::seed_from(2);
        // 2000 GFLOP: 100 s locally, 10 s on a 200-GFLOPS lender, ~0.2 s in
        // the datacenter — cellular wins while the cell is healthy.
        let choice = decide(&task(2000.0), &ctx(&channel, &cellular), &mut rng);
        assert_eq!(choice, OffloadTarget::Cellular);
    }

    #[test]
    fn jammed_cell_pushes_to_vcloud() {
        let channel = Channel::dsrc();
        let cellular = Cellular::unavailable();
        let mut rng = SimRng::seed_from(3);
        let choice = decide(&task(2000.0), &ctx(&channel, &cellular), &mut rng);
        assert_eq!(choice, OffloadTarget::VehicularCloud);
        assert_eq!(
            expected_latency(
                &task(1.0),
                OffloadTarget::Cellular,
                &ctx(&channel, &cellular),
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn congested_cell_pushes_to_vcloud() {
        let channel = Channel::dsrc();
        let cellular = Cellular::healthy();
        let mut rng = SimRng::seed_from(4);
        let mut c = ctx(&channel, &cellular);
        c.cell_users = 20_000; // pathological event-scale congestion (~40 s mean RTT)
                               // Average over draws: the congested cell should lose most decisions.
        let mut vcloud_wins = 0;
        for _ in 0..100 {
            if decide(&task(2000.0), &c, &mut rng) == OffloadTarget::VehicularCloud {
                vcloud_wins += 1;
            }
        }
        // The sampled cellular RTT is exponential (mean ~40 s vs ~10 s on the
        // v-cloud), so the cell still gets lucky occasionally.
        assert!(vcloud_wins > 65, "v-cloud won only {vcloud_wins}/100 under congestion");
    }

    #[test]
    fn no_vcloud_falls_back() {
        let channel = Channel::dsrc();
        let cellular = Cellular::unavailable();
        let mut rng = SimRng::seed_from(5);
        let mut c = ctx(&channel, &cellular);
        c.vcloud_cpu_gflops = None;
        assert_eq!(decide(&task(2000.0), &c, &mut rng), OffloadTarget::Local);
    }

    #[test]
    fn latencies_are_positive_and_ordered_by_work() {
        let channel = Channel::dsrc();
        let cellular = Cellular::healthy();
        let mut rng = SimRng::seed_from(6);
        let c = ctx(&channel, &cellular);
        for target in [OffloadTarget::Local, OffloadTarget::VehicularCloud, OffloadTarget::Cellular]
        {
            let small = expected_latency(&task(10.0), target, &c, &mut rng).unwrap();
            let big = expected_latency(&task(10_000.0), target, &c, &mut rng).unwrap();
            assert!(small > 0.0);
            assert!(big > small, "{target}: more work must take longer");
        }
    }
}
