//! The v-cloud task scheduler: placement, progress, expiry, and departure
//! handling.
//!
//! Implements the §III-A decision loop: place queued tasks on lender hosts
//! whose *estimated* duration of stay covers the task's remaining runtime,
//! advance running tasks, and react when a host leaves mid-task — either
//! dropping the work (the conventional-cloud reflex the paper criticizes)
//! or handing the checkpoint over to another host.

use crate::task::{TaskId, TaskRecord, TaskSpec, TaskStatus};
use std::collections::BTreeMap;
use vc_sim::node::{SaeLevel, VehicleId};
use vc_sim::time::SimTime;

/// A candidate host as the scheduler sees it this tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostInfo {
    /// The lender vehicle.
    pub id: VehicleId,
    /// Lendable compute, GFLOPS.
    pub cpu_gflops: f64,
    /// SAE automation level.
    pub automation: SaeLevel,
    /// Estimated remaining stay, seconds (an *estimate* — reality may differ).
    pub stay_estimate_s: f64,
}

/// How queued tasks pick among eligible hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// First eligible host in id order.
    FirstFit,
    /// Host with the longest estimated stay first.
    MostStable,
    /// Fastest eligible host first.
    FastestCpu,
}

/// What happens to a running task when its host departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverPolicy {
    /// Discard progress and requeue from zero (wastes recomputation — the
    /// behaviour §III-A says conventional clouds get away with).
    Drop,
    /// Ship an encrypted checkpoint to a new host, preserving progress.
    Handover,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Departure policy.
    pub handover: HandoverPolicy,
    /// Safety factor on stay estimates (place only when
    /// `stay >= runtime * safety`).
    pub stay_safety: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            placement: PlacementPolicy::MostStable,
            handover: HandoverPolicy::Handover,
            stay_safety: 1.0,
        }
    }
}

/// Cumulative scheduler statistics.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Tasks completed.
    pub completed: u64,
    /// Tasks expired past deadline.
    pub expired: u64,
    /// Successful checkpoint handovers.
    pub handovers: u64,
    /// Work lost and redone due to drops, GFLOP.
    pub recomputed_gflop: f64,
    /// Data moved for inputs/outputs/checkpoints, MB.
    pub network_mb: f64,
    /// Work actually executed, GFLOP (includes recomputation).
    pub executed_gflop: f64,
    /// Capacity offered over time, GFLOP (Σ cpu × dt over online hosts).
    pub offered_gflop: f64,
    /// Sum of turnaround times of completed tasks, seconds.
    pub turnaround_sum_s: f64,
}

impl SchedulerStats {
    /// Utilization: executed work over offered capacity, `[0, 1]`-ish
    /// (recomputation can push the numerator up, never above offered).
    pub fn utilization(&self) -> f64 {
        if self.offered_gflop == 0.0 {
            0.0
        } else {
            self.executed_gflop / self.offered_gflop
        }
    }

    /// Mean turnaround of completed tasks, seconds.
    pub fn mean_turnaround_s(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.turnaround_sum_s / self.completed as f64
        }
    }
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    tasks: BTreeMap<TaskId, TaskRecord>,
    /// host → task running on it.
    assignments: BTreeMap<VehicleId, TaskId>,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            tasks: BTreeMap::new(),
            assignments: BTreeMap::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Submits a task.
    pub fn submit(&mut self, spec: TaskSpec, now: SimTime) {
        self.tasks.insert(spec.id, TaskRecord::new(spec, now));
    }

    /// All task records (inspection).
    pub fn tasks(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.values()
    }

    /// One record by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.get(&id)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Number of live (queued or running) tasks.
    pub fn live_tasks(&self) -> usize {
        self.tasks.values().filter(|t| t.is_live()).count()
    }

    /// Advances like [`Scheduler::tick`] and emits `cloud` scheduler events
    /// to the recorder: `sched.place` (new or moved assignments),
    /// `sched.complete`, `sched.handover`, `sched.expire`, and
    /// `sched.requeue` (progress lost to a drop), plus `cloud.sched.live`
    /// and `cloud.sched.running` gauges. The scheduler is RNG-free, so the
    /// probed path is behaviourally identical to the plain one.
    pub fn tick_obs(
        &mut self,
        now: SimTime,
        dt: f64,
        hosts: &[HostInfo],
        rec: Option<&mut vc_obs::Recorder>,
    ) {
        let Some(rec) = rec else {
            self.tick(now, dt, hosts);
            return;
        };
        let assignments_before = self.assignments.clone();
        let before = self.stats.clone();
        self.tick(now, dt, hosts);
        let placed = self
            .assignments
            .iter()
            .filter(|(host, task)| assignments_before.get(host) != Some(task))
            .count();
        if placed > 0 {
            rec.event(now, "cloud", "sched.place", vec![("tasks", placed.into())]);
        }
        let completed = self.stats.completed - before.completed;
        if completed > 0 {
            rec.event(now, "cloud", "sched.complete", vec![("tasks", completed.into())]);
        }
        let handovers = self.stats.handovers - before.handovers;
        if handovers > 0 {
            rec.event(now, "cloud", "sched.handover", vec![("tasks", handovers.into())]);
        }
        let expired = self.stats.expired - before.expired;
        if expired > 0 {
            rec.event(now, "cloud", "sched.expire", vec![("tasks", expired.into())]);
        }
        let recomputed = self.stats.recomputed_gflop - before.recomputed_gflop;
        if recomputed > 0.0 {
            rec.event(now, "cloud", "sched.requeue", vec![("lost_gflop", recomputed.into())]);
        }
        rec.hub_mut().gauge_set("cloud.sched.live", self.live_tasks() as f64);
        rec.hub_mut().gauge_set("cloud.sched.running", self.assignments.len() as f64);
    }

    /// Advances the scheduler by `dt` seconds given this tick's host set.
    /// Hosts absent from `hosts` are treated as departed.
    pub fn tick(&mut self, now: SimTime, dt: f64, hosts: &[HostInfo]) {
        let host_map: BTreeMap<VehicleId, HostInfo> = hosts.iter().map(|h| (h.id, *h)).collect();
        self.stats.offered_gflop += hosts.iter().map(|h| h.cpu_gflops).sum::<f64>() * dt;

        self.handle_departures(&host_map);
        self.progress_running(now, dt, &host_map);
        self.expire_overdue(now);
        self.place_queued(&host_map);
    }

    fn handle_departures(&mut self, host_map: &BTreeMap<VehicleId, HostInfo>) {
        let departed: Vec<(VehicleId, TaskId)> = self
            .assignments
            .iter()
            .filter(|(host, _)| !host_map.contains_key(host))
            .map(|(h, t)| (*h, *t))
            .collect();
        for (host, task_id) in departed {
            self.assignments.remove(&host);
            let config = self.config;
            let free = self.free_hosts(host_map);
            let record = self.tasks.get_mut(&task_id).expect("assigned task exists");
            let done = match record.status {
                TaskStatus::Running { done_gflop, .. } => done_gflop,
                _ => 0.0,
            };
            match config.handover {
                HandoverPolicy::Drop => {
                    record.recomputed_gflop += done;
                    self.stats.recomputed_gflop += done;
                    record.status = TaskStatus::Queued;
                    // Input must be re-shipped on the next placement.
                }
                HandoverPolicy::Handover => {
                    // Find a free eligible host to receive the checkpoint.
                    let spec = record.spec.clone();
                    let target = free
                        .into_iter()
                        .find(|h| eligible(h, &spec, spec.work_gflop - done, config.stay_safety));
                    match target {
                        Some(h) => {
                            // Checkpoint = remaining input + progress state
                            // (modeled as half the input size).
                            self.stats.network_mb += spec.input_mb * 0.5 + spec.input_mb;
                            record.status = TaskStatus::Running { host: h.id, done_gflop: done };
                            record.handovers += 1;
                            self.stats.handovers += 1;
                            self.assignments.insert(h.id, task_id);
                        }
                        None => {
                            // Nobody to hand to: progress dies with the host.
                            record.recomputed_gflop += done;
                            self.stats.recomputed_gflop += done;
                            record.status = TaskStatus::Queued;
                        }
                    }
                }
            }
        }
    }

    fn progress_running(
        &mut self,
        now: SimTime,
        dt: f64,
        host_map: &BTreeMap<VehicleId, HostInfo>,
    ) {
        let running: Vec<TaskId> = self.assignments.values().copied().collect();
        for task_id in running {
            let record = self.tasks.get_mut(&task_id).expect("assigned task exists");
            if let TaskStatus::Running { host, done_gflop } = record.status {
                let cpu = host_map.get(&host).map_or(0.0, |h| h.cpu_gflops);
                let advance = (cpu * dt).min(record.spec.work_gflop - done_gflop);
                self.stats.executed_gflop += advance;
                let new_done = done_gflop + advance;
                if new_done >= record.spec.work_gflop - 1e-9 {
                    record.status = TaskStatus::Completed { at: now };
                    self.stats.completed += 1;
                    self.stats.network_mb += record.spec.output_mb;
                    self.stats.turnaround_sum_s +=
                        now.saturating_since(record.submitted_at).as_secs_f64();
                    self.assignments.remove(&host);
                } else {
                    record.status = TaskStatus::Running { host, done_gflop: new_done };
                }
            }
        }
    }

    fn expire_overdue(&mut self, now: SimTime) {
        let mut freed: Vec<VehicleId> = Vec::new();
        for record in self.tasks.values_mut() {
            if !record.is_live() {
                continue;
            }
            if let Some(deadline) = record.spec.deadline {
                if now > deadline {
                    if let TaskStatus::Running { host, .. } = record.status {
                        freed.push(host);
                    }
                    record.status = TaskStatus::Expired;
                    self.stats.expired += 1;
                }
            }
        }
        for host in freed {
            self.assignments.remove(&host);
        }
    }

    fn place_queued(&mut self, host_map: &BTreeMap<VehicleId, HostInfo>) {
        let _place = vc_obs::profile::frame("sched.place");
        let mut free = self.free_hosts(host_map);
        match self.config.placement {
            PlacementPolicy::FirstFit => free.sort_by_key(|h| h.id),
            PlacementPolicy::MostStable => free.sort_by(|a, b| {
                b.stay_estimate_s
                    .partial_cmp(&a.stay_estimate_s)
                    .expect("finite stays")
                    .then(a.id.cmp(&b.id))
            }),
            PlacementPolicy::FastestCpu => free.sort_by(|a, b| {
                b.cpu_gflops.partial_cmp(&a.cpu_gflops).expect("finite").then(a.id.cmp(&b.id))
            }),
        }
        let queued: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|t| matches!(t.status, TaskStatus::Queued))
            .map(|t| t.spec.id)
            .collect();
        let safety = self.config.stay_safety;
        for task_id in queued {
            let record = self.tasks.get_mut(&task_id).expect("queued task exists");
            let remaining = record.remaining_gflop();
            let Some(idx) = free.iter().position(|h| eligible(h, &record.spec, remaining, safety))
            else {
                continue;
            };
            let host = free.remove(idx);
            record.status = TaskStatus::Running {
                host: host.id,
                done_gflop: record.spec.work_gflop - remaining,
            };
            self.stats.network_mb += record.spec.input_mb;
            self.assignments.insert(host.id, task_id);
        }
    }

    fn free_hosts(&self, host_map: &BTreeMap<VehicleId, HostInfo>) -> Vec<HostInfo> {
        host_map.values().filter(|h| !self.assignments.contains_key(&h.id)).copied().collect()
    }
}

/// Is this host allowed to take this task, per automation floor and stay
/// estimate vs remaining runtime?
fn eligible(host: &HostInfo, spec: &TaskSpec, remaining_gflop: f64, safety: f64) -> bool {
    if host.automation < spec.min_automation {
        return false;
    }
    if host.cpu_gflops <= 0.0 {
        return false;
    }
    let runtime = remaining_gflop / host.cpu_gflops;
    host.stay_estimate_s >= runtime * safety
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(id: u32, cpu: f64, stay: f64) -> HostInfo {
        HostInfo {
            id: VehicleId(id),
            cpu_gflops: cpu,
            automation: SaeLevel::L4,
            stay_estimate_s: stay,
        }
    }

    fn spec(id: u64, work: f64) -> TaskSpec {
        TaskSpec::compute(TaskId(id), work)
    }

    fn run(sched: &mut Scheduler, hosts: &[HostInfo], ticks: usize, dt: f64) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            now += vc_sim::time::SimDuration::from_secs_f64(dt);
            sched.tick(now, dt, hosts);
        }
        now
    }

    #[test]
    fn single_task_completes() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(spec(1, 100.0), SimTime::ZERO);
        let hosts = [host(0, 50.0, 1000.0)];
        run(&mut s, &hosts, 10, 1.0);
        assert_eq!(s.stats().completed, 1);
        assert!(s.task(TaskId(1)).unwrap().is_completed());
        // 100 GFLOP at 50 GFLOPS = 2 s of work + 1 tick placement lag.
        let t = s.task(TaskId(1)).unwrap().turnaround().unwrap().as_secs_f64();
        assert!(t <= 4.0, "turnaround {t}");
    }

    #[test]
    fn placement_respects_automation_floor() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut sp = spec(1, 10.0);
        sp.min_automation = SaeLevel::L5;
        s.submit(sp, SimTime::ZERO);
        let hosts = [HostInfo { automation: SaeLevel::L3, ..host(0, 100.0, 1000.0) }];
        run(&mut s, &hosts, 5, 1.0);
        assert_eq!(s.stats().completed, 0, "L3 host must not take an L5 task");
    }

    #[test]
    fn placement_respects_stay_estimate() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(spec(1, 1000.0), SimTime::ZERO); // 100 s on this host
        let hosts = [host(0, 10.0, 30.0)]; // claims to stay only 30 s
        run(&mut s, &hosts, 5, 1.0);
        assert_eq!(s.live_tasks(), 1);
        assert_eq!(s.stats().completed, 0, "stay too short, never placed");
    }

    #[test]
    fn most_stable_placement_prefers_long_stay() {
        let config =
            SchedulerConfig { placement: PlacementPolicy::MostStable, ..Default::default() };
        let mut s = Scheduler::new(config);
        s.submit(spec(1, 10.0), SimTime::ZERO);
        let hosts = [host(0, 100.0, 50.0), host(1, 100.0, 500.0)];
        s.tick(SimTime::from_secs(1), 1.0, &hosts);
        match s.task(TaskId(1)).unwrap().status {
            TaskStatus::Running { host: h, .. } => assert_eq!(h, VehicleId(1)),
            ref other => panic!("expected running, got {other:?}"),
        }
    }

    #[test]
    fn fastest_cpu_placement() {
        let config =
            SchedulerConfig { placement: PlacementPolicy::FastestCpu, ..Default::default() };
        let mut s = Scheduler::new(config);
        s.submit(spec(1, 10.0), SimTime::ZERO);
        let hosts = [host(0, 50.0, 1000.0), host(1, 200.0, 1000.0)];
        s.tick(SimTime::from_secs(1), 1.0, &hosts);
        if let TaskStatus::Running { host: h, .. } = s.task(TaskId(1)).unwrap().status {
            assert_eq!(h, VehicleId(1));
        } else {
            panic!("not running");
        }
    }

    #[test]
    fn drop_policy_loses_progress() {
        let config = SchedulerConfig { handover: HandoverPolicy::Drop, ..Default::default() };
        let mut s = Scheduler::new(config);
        s.submit(spec(1, 100.0), SimTime::ZERO);
        let both = [host(0, 10.0, 1000.0)];
        // Run 5 s: ~40 GFLOP done (first tick places, 4 ticks execute).
        run(&mut s, &both, 5, 1.0);
        // Host 0 departs; nothing remains.
        s.tick(SimTime::from_secs(6), 1.0, &[]);
        let rec = s.task(TaskId(1)).unwrap();
        assert_eq!(rec.status, TaskStatus::Queued);
        assert!(rec.recomputed_gflop > 0.0, "progress was lost");
        assert!(s.stats().recomputed_gflop > 0.0);
        assert_eq!(s.stats().handovers, 0);
    }

    #[test]
    fn handover_policy_preserves_progress() {
        let config = SchedulerConfig { handover: HandoverPolicy::Handover, ..Default::default() };
        let mut s = Scheduler::new(config);
        s.submit(spec(1, 100.0), SimTime::ZERO);
        let before = [host(0, 10.0, 1000.0), host(1, 10.0, 1000.0)];
        run(&mut s, &before, 5, 1.0);
        // Host 0 departs, host 1 remains free → checkpoint moves.
        let after = [host(1, 10.0, 1000.0)];
        s.tick(SimTime::from_secs(6), 1.0, &after);
        let rec = s.task(TaskId(1)).unwrap();
        if let TaskStatus::Running { host: h, done_gflop } = rec.status {
            assert_eq!(h, VehicleId(1));
            assert!(done_gflop > 0.0, "progress preserved");
        } else {
            panic!("expected running after handover, got {:?}", rec.status);
        }
        assert_eq!(s.stats().handovers, 1);
        assert_eq!(rec.recomputed_gflop, 0.0);
    }

    #[test]
    fn handover_falls_back_to_drop_without_target() {
        let config = SchedulerConfig { handover: HandoverPolicy::Handover, ..Default::default() };
        let mut s = Scheduler::new(config);
        s.submit(spec(1, 100.0), SimTime::ZERO);
        run(&mut s, &[host(0, 10.0, 1000.0)], 5, 1.0);
        s.tick(SimTime::from_secs(6), 1.0, &[]);
        let rec = s.task(TaskId(1)).unwrap();
        assert_eq!(rec.status, TaskStatus::Queued);
        assert!(rec.recomputed_gflop > 0.0);
    }

    #[test]
    fn deadline_expiry() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut sp = spec(1, 10_000.0);
        sp.deadline = Some(SimTime::from_secs(3));
        s.submit(sp, SimTime::ZERO);
        run(&mut s, &[host(0, 10.0, 10_000.0)], 10, 1.0);
        assert_eq!(s.stats().expired, 1);
        assert_eq!(s.task(TaskId(1)).unwrap().status, TaskStatus::Expired);
        // Host freed for other work.
        s.submit(spec(2, 10.0), SimTime::from_secs(10));
        let mut now = SimTime::from_secs(10);
        for _ in 0..5 {
            now += vc_sim::time::SimDuration::from_secs(1);
            s.tick(now, 1.0, &[host(0, 10.0, 10_000.0)]);
        }
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(spec(1, 50.0), SimTime::ZERO);
        run(&mut s, &[host(0, 10.0, 1000.0)], 10, 1.0);
        let st = s.stats();
        assert_eq!(st.completed, 1);
        assert!((st.executed_gflop - 50.0).abs() < 1e-6);
        assert!((st.offered_gflop - 100.0).abs() < 1e-6);
        assert!((st.utilization() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn one_task_per_host() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(spec(1, 1000.0), SimTime::ZERO);
        s.submit(spec(2, 1000.0), SimTime::ZERO);
        s.tick(SimTime::from_secs(1), 1.0, &[host(0, 10.0, 10_000.0)]);
        let running = s.tasks().filter(|t| matches!(t.status, TaskStatus::Running { .. })).count();
        assert_eq!(running, 1, "a host runs one task at a time");
    }

    #[test]
    fn tick_obs_matches_plain_and_emits_lifecycle_events() {
        let mk = || {
            let mut s = Scheduler::new(SchedulerConfig::default());
            s.submit(spec(1, 50.0), SimTime::ZERO);
            s
        };
        let hosts = [host(0, 10.0, 1000.0)];
        let mut plain = mk();
        run(&mut plain, &hosts, 10, 1.0);

        let mut probed = mk();
        let mut rec = vc_obs::Recorder::new();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += vc_sim::time::SimDuration::from_secs(1);
            probed.tick_obs(now, 1.0, &hosts, Some(&mut rec));
        }
        assert_eq!(probed.stats().completed, plain.stats().completed);
        assert_eq!(rec.hub().counter("cloud.sched.place"), 1);
        assert_eq!(rec.hub().counter("cloud.sched.complete"), 1);
        assert_eq!(rec.hub().gauge("cloud.sched.live"), Some(0.0));
        // `None` recorder delegates straight to `tick`.
        let mut silent = mk();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += vc_sim::time::SimDuration::from_secs(1);
            silent.tick_obs(now, 1.0, &hosts, None);
        }
        assert_eq!(silent.stats().completed, plain.stats().completed);
    }

    #[test]
    fn network_accounting_includes_io() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(spec(1, 10.0), SimTime::ZERO);
        run(&mut s, &[host(0, 100.0, 1000.0)], 3, 1.0);
        // input 1.0 MB + output 0.5 MB
        assert!((s.stats().network_mb - 1.5).abs() < 1e-9);
    }
}
