//! Encrypted task-checkpoint handover (paper §III-A).
//!
//! "A more interesting problem would be how the vehicle hand[s] over the
//! unfinished, **encrypted** task to some other vehicles in v-cloud
//! environments without bring[ing] too much overhead."
//!
//! A departing host serializes its partial task state into a
//! [`Checkpoint`], seals it to the receiving host's public share
//! (DH-derived key + authenticated encryption), and ships it. Only the
//! designated receiver can open it; any in-transit tampering is detected.
//! The [`Scheduler`](crate::scheduler::Scheduler) models the *cost* of this
//! transfer; this module is the mechanism itself.

use vc_crypto::chacha20::{open as aead_open, seal as aead_seal};
use vc_crypto::dh::{EphemeralSecret, PublicShare};
use vc_sim::node::VehicleId;

use crate::task::TaskId;

/// A partial execution state worth preserving across hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The task being handed over.
    pub task: TaskId,
    /// Work already completed, GFLOP.
    pub done_gflop: f64,
    /// Opaque serialized task state (model weights, partial sums, …).
    pub state: Vec<u8>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + 4 + self.state.len());
        out.extend_from_slice(&self.task.0.to_be_bytes());
        out.extend_from_slice(&self.done_gflop.to_be_bytes());
        out.extend_from_slice(&(self.state.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.state);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        if bytes.len() < 20 {
            return None;
        }
        let task = TaskId(u64::from_be_bytes(bytes[0..8].try_into().ok()?));
        let done_gflop = f64::from_be_bytes(bytes[8..16].try_into().ok()?);
        let len = u32::from_be_bytes(bytes[16..20].try_into().ok()?) as usize;
        if bytes.len() != 20 + len || !done_gflop.is_finite() || done_gflop < 0.0 {
            return None;
        }
        Some(Checkpoint { task, done_gflop, state: bytes[20..].to_vec() })
    }
}

/// A checkpoint sealed to one receiving host.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedCheckpoint {
    /// The task (cleartext routing metadata).
    pub task: TaskId,
    /// Departing host.
    pub from: VehicleId,
    /// Designated receiver.
    pub to: VehicleId,
    /// Sender's ephemeral DH share.
    pub eph_share: [u8; 32],
    /// The encrypted, authenticated checkpoint body.
    pub sealed: Vec<u8>,
}

impl SealedCheckpoint {
    /// Wire size in bytes (what the scheduler charges the network).
    pub fn wire_len(&self) -> usize {
        8 + 4 + 4 + 32 + self.sealed.len()
    }
}

/// Seals `checkpoint` from `from` to the holder of `recipient_share`.
/// `entropy` seeds the per-transfer ephemeral key (pass RNG output).
pub fn seal_checkpoint(
    checkpoint: &Checkpoint,
    from: VehicleId,
    to: VehicleId,
    recipient_share: &PublicShare,
    entropy: u64,
) -> SealedCheckpoint {
    let mut seed = entropy.to_be_bytes().to_vec();
    seed.extend_from_slice(&from.0.to_be_bytes());
    seed.extend_from_slice(&to.0.to_be_bytes());
    seed.extend_from_slice(&checkpoint.task.0.to_be_bytes());
    let eph = EphemeralSecret::from_seed(&seed);
    let key = eph.agree(recipient_share, b"vc-checkpoint");
    let sealed = aead_seal(&key.0, &[0u8; 12], &checkpoint.encode());
    SealedCheckpoint {
        task: checkpoint.task,
        from,
        to,
        eph_share: eph.public_share().to_bytes(),
        sealed,
    }
}

/// Opens a sealed checkpoint with the recipient's long-term DH secret.
/// Returns `None` on wrong recipient, tampering, or a malformed body.
pub fn open_checkpoint(
    sealed: &SealedCheckpoint,
    recipient_secret: &EphemeralSecret,
) -> Option<Checkpoint> {
    let share = PublicShare::from_bytes(&sealed.eph_share)?;
    let key = recipient_secret.agree(&share, b"vc-checkpoint");
    let plaintext = aead_open(&key.0, &[0u8; 12], &sealed.sealed)?;
    let checkpoint = Checkpoint::decode(&plaintext)?;
    // The cleartext routing header must match the sealed content.
    if checkpoint.task != sealed.task {
        return None;
    }
    Some(checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> Checkpoint {
        Checkpoint { task: TaskId(7), done_gflop: 123.5, state: vec![1, 2, 3, 4, 5] }
    }

    fn recipient(seed: u8) -> EphemeralSecret {
        EphemeralSecret::from_seed(&[seed, 0xCC])
    }

    #[test]
    fn roundtrip() {
        let rx = recipient(1);
        let sealed =
            seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 42);
        let opened = open_checkpoint(&sealed, &rx).unwrap();
        assert_eq!(opened, checkpoint());
        assert!(sealed.wire_len() > 5 + 32);
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let rx = recipient(1);
        let thief = recipient(2);
        let sealed =
            seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 42);
        assert_eq!(open_checkpoint(&sealed, &thief), None);
    }

    #[test]
    fn tampered_body_detected() {
        let rx = recipient(1);
        let mut sealed =
            seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 42);
        sealed.sealed[0] ^= 1;
        assert_eq!(open_checkpoint(&sealed, &rx), None);
    }

    #[test]
    fn relabelled_task_header_detected() {
        // A relay rewrites the cleartext task id to smuggle the state into a
        // different task slot: must fail on the header/content cross-check.
        let rx = recipient(1);
        let mut sealed =
            seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 42);
        sealed.task = TaskId(99);
        assert_eq!(open_checkpoint(&sealed, &rx), None);
    }

    #[test]
    fn empty_state_roundtrips() {
        let rx = recipient(3);
        let cp = Checkpoint { task: TaskId(0), done_gflop: 0.0, state: vec![] };
        let sealed = seal_checkpoint(&cp, VehicleId(5), VehicleId(6), &rx.public_share(), 1);
        assert_eq!(open_checkpoint(&sealed, &rx).unwrap(), cp);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Checkpoint::decode(&[]), None);
        assert_eq!(Checkpoint::decode(&[0u8; 19]), None);
        // Length field lies about the state length.
        let mut bytes = checkpoint().encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Checkpoint::decode(&bytes), None);
        // Negative / non-finite progress.
        let mut bad = checkpoint();
        bad.done_gflop = f64::NAN;
        assert_eq!(Checkpoint::decode(&bad.encode()), None);
    }

    #[test]
    fn distinct_transfers_distinct_ciphertexts() {
        let rx = recipient(1);
        let a = seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 1);
        let b = seal_checkpoint(&checkpoint(), VehicleId(1), VehicleId(2), &rx.public_share(), 2);
        assert_ne!(a.sealed, b.sealed, "fresh ephemeral per transfer");
        assert!(open_checkpoint(&a, &rx).is_some());
        assert!(open_checkpoint(&b, &rx).is_some());
    }
}
