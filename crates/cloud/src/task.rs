//! Compute tasks and their lifecycle in a vehicular cloud.
//!
//! Tasks are divisible units of work (GFLOP) with data movement costs and
//! optional deadlines. Their lifecycle reflects the paper's §III-A concerns:
//! a task may be queued, running on a lender vehicle, handed over when the
//! host leaves, requeued from scratch, completed, or expired.

use vc_sim::node::{SaeLevel, VehicleId};
use vc_sim::time::SimTime;

/// Identifier of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Immutable description of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// This task's id.
    pub id: TaskId,
    /// Total compute work, GFLOP.
    pub work_gflop: f64,
    /// Input payload to ship to the host, MB.
    pub input_mb: f64,
    /// Output payload to ship back, MB.
    pub output_mb: f64,
    /// Optional completion deadline.
    pub deadline: Option<SimTime>,
    /// Minimum SAE automation level of the host (paper §V-A: "if the
    /// automation level [is] suitable for receiving this task").
    pub min_automation: SaeLevel,
}

impl TaskSpec {
    /// A simple compute-only task.
    pub fn compute(id: TaskId, work_gflop: f64) -> TaskSpec {
        TaskSpec {
            id,
            work_gflop,
            input_mb: 1.0,
            output_mb: 0.5,
            deadline: None,
            min_automation: SaeLevel::L3,
        }
    }

    /// Estimated runtime on a host with the given capacity, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_gflops` is not strictly positive.
    pub fn runtime_on(&self, cpu_gflops: f64) -> f64 {
        assert!(cpu_gflops > 0.0, "host capacity must be positive");
        self.work_gflop / cpu_gflops
    }
}

/// Live status of a task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskStatus {
    /// Waiting for a host.
    Queued,
    /// Running on a host with some completed work.
    Running {
        /// The lender vehicle executing the task.
        host: VehicleId,
        /// Work completed so far, GFLOP.
        done_gflop: f64,
    },
    /// Finished.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// Deadline passed before completion.
    Expired,
}

/// A task plus its mutable status and accounting.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The immutable spec.
    pub spec: TaskSpec,
    /// Current status.
    pub status: TaskStatus,
    /// When the task was submitted.
    pub submitted_at: SimTime,
    /// Number of times the task was handed over between hosts.
    pub handovers: u32,
    /// Work lost to drop-and-recompute, GFLOP.
    pub recomputed_gflop: f64,
}

impl TaskRecord {
    /// Creates a freshly queued record.
    pub fn new(spec: TaskSpec, submitted_at: SimTime) -> TaskRecord {
        TaskRecord {
            spec,
            status: TaskStatus::Queued,
            submitted_at,
            handovers: 0,
            recomputed_gflop: 0.0,
        }
    }

    /// Remaining work, GFLOP.
    pub fn remaining_gflop(&self) -> f64 {
        match &self.status {
            TaskStatus::Running { done_gflop, .. } => (self.spec.work_gflop - done_gflop).max(0.0),
            TaskStatus::Completed { .. } => 0.0,
            _ => self.spec.work_gflop,
        }
    }

    /// `true` when the task still needs placement or execution.
    pub fn is_live(&self) -> bool {
        matches!(self.status, TaskStatus::Queued | TaskStatus::Running { .. })
    }

    /// `true` once completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, TaskStatus::Completed { .. })
    }

    /// Turnaround time if completed.
    pub fn turnaround(&self) -> Option<vc_sim::time::SimDuration> {
        match self.status {
            TaskStatus::Completed { at } => Some(at.saturating_since(self.submitted_at)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scales_with_capacity() {
        let spec = TaskSpec::compute(TaskId(1), 100.0);
        assert_eq!(spec.runtime_on(50.0), 2.0);
        assert_eq!(spec.runtime_on(200.0), 0.5);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        TaskSpec::compute(TaskId(1), 10.0).runtime_on(0.0);
    }

    #[test]
    fn remaining_work_through_lifecycle() {
        let mut rec = TaskRecord::new(TaskSpec::compute(TaskId(1), 100.0), SimTime::ZERO);
        assert_eq!(rec.remaining_gflop(), 100.0);
        assert!(rec.is_live());
        rec.status = TaskStatus::Running { host: VehicleId(3), done_gflop: 30.0 };
        assert_eq!(rec.remaining_gflop(), 70.0);
        rec.status = TaskStatus::Completed { at: SimTime::from_secs(9) };
        assert_eq!(rec.remaining_gflop(), 0.0);
        assert!(rec.is_completed());
        assert!(!rec.is_live());
        assert_eq!(rec.turnaround().unwrap().as_secs_f64(), 9.0);
    }

    #[test]
    fn expired_is_not_live() {
        let mut rec = TaskRecord::new(TaskSpec::compute(TaskId(1), 10.0), SimTime::ZERO);
        rec.status = TaskStatus::Expired;
        assert!(!rec.is_live());
        assert_eq!(rec.turnaround(), None);
        assert_eq!(rec.remaining_gflop(), 10.0);
    }

    #[test]
    fn done_beyond_total_clamps() {
        let mut rec = TaskRecord::new(TaskSpec::compute(TaskId(1), 10.0), SimTime::ZERO);
        rec.status = TaskStatus::Running { host: VehicleId(0), done_gflop: 15.0 };
        assert_eq!(rec.remaining_gflop(), 0.0);
    }
}
