//! Operating modes and emergency-mode propagation (paper §V-A,
//! "V-cloud management").
//!
//! The authority (or a police vehicle) injects a mode switch — emergency,
//! major event, disaster — at one vehicle; the switch then propagates
//! through V2V gossip since infrastructure may be down. Experiment E3
//! measures how many gossip rounds full coverage takes.

use vc_sim::node::VehicleId;
use vc_sim::radio::{Channel, NeighborTable};
use vc_sim::rng::SimRng;

/// Cloud operating modes (paper §V-A names normal, emergency, large-scale
/// event, and disaster behaviours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperatingMode {
    /// Normal operation.
    Normal,
    /// Local emergency (accident): reschedule resources for safety tasks.
    Emergency,
    /// Planned large-scale event (paper's Olympic-Games example).
    MajorEvent,
    /// Disaster: minimize RSU use, pure V2V.
    Disaster,
}

/// Per-vehicle mode state with gossip propagation.
#[derive(Debug, Clone)]
pub struct ModeManager {
    modes: Vec<OperatingMode>,
}

impl ModeManager {
    /// Creates a manager with `n` vehicles in [`OperatingMode::Normal`].
    pub fn new(n: usize) -> Self {
        ModeManager { modes: vec![OperatingMode::Normal; n] }
    }

    /// The mode of one vehicle.
    pub fn mode(&self, id: VehicleId) -> OperatingMode {
        self.modes[id.0 as usize]
    }

    /// Directly sets a vehicle's mode (the injection point).
    pub fn inject(&mut self, id: VehicleId, mode: OperatingMode) {
        self.modes[id.0 as usize] = mode;
    }

    /// Fraction of vehicles in `mode`.
    pub fn coverage(&self, mode: OperatingMode) -> f64 {
        if self.modes.is_empty() {
            return 0.0;
        }
        self.modes.iter().filter(|&&m| m == mode).count() as f64 / self.modes.len() as f64
    }

    /// One gossip round: every vehicle in a non-Normal mode offers the mode
    /// to each neighbor over the lossy channel. Returns how many vehicles
    /// switched this round.
    ///
    /// Mode precedence: a higher-severity mode overrides a lower one
    /// (`Disaster > MajorEvent > Emergency > Normal` by enum order).
    pub fn gossip_round(
        &mut self,
        neighbors: &NeighborTable,
        positions: &[vc_sim::geom::Point],
        channel: &Channel,
        rng: &mut SimRng,
    ) -> usize {
        let snapshot = self.modes.clone();
        let mut switched = 0;
        for (i, &mode) in snapshot.iter().enumerate() {
            if mode == OperatingMode::Normal {
                continue;
            }
            let src = VehicleId(i as u32);
            for &dst in neighbors.of(src) {
                let j = dst.0 as usize;
                if snapshot[j] >= mode {
                    continue;
                }
                let dist = positions[i].distance(positions[j]);
                // A short mode-switch beacon (64 bytes).
                if channel.try_deliver(dist, neighbors.degree(src), 64, rng).is_some()
                    && self.modes[j] < mode
                {
                    self.modes[j] = mode;
                    switched += 1;
                }
            }
        }
        switched
    }

    /// One gossip round like [`ModeManager::gossip_round`], plus a
    /// `cloud`/`mode.switch` event carrying how many vehicles switched and
    /// the resulting coverage of `mode`, and a `cloud.mode.switched`
    /// counter. Delegates to the plain round, so the RNG stream (and hence
    /// the propagation) is identical with or without a recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn gossip_round_obs(
        &mut self,
        neighbors: &NeighborTable,
        positions: &[vc_sim::geom::Point],
        channel: &Channel,
        rng: &mut SimRng,
        mode: OperatingMode,
        at: vc_sim::time::SimTime,
        rec: Option<&mut vc_obs::Recorder>,
    ) -> usize {
        let _round = vc_obs::profile::frame("mode.gossip");
        let switched = self.gossip_round(neighbors, positions, channel, rng);
        if let Some(r) = rec {
            r.event(
                at,
                "cloud",
                "mode.switch",
                vec![("switched", switched.into()), ("coverage", self.coverage(mode).into())],
            );
            r.hub_mut().counter_add("cloud.mode.switched", switched as u64);
            r.hub_mut().gauge_set("cloud.mode.coverage", self.coverage(mode));
        }
        switched
    }

    /// Number of vehicles tracked.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// `true` when no vehicles are tracked.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_sim::geom::Point;

    fn line_world(n: usize, spacing: f64) -> (Vec<Point>, NeighborTable) {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * spacing, 0.0)).collect();
        let online = vec![true; n];
        let table = NeighborTable::build(&positions, &online, 150.0);
        (positions, table)
    }

    #[test]
    fn injection_and_coverage() {
        let mut mgr = ModeManager::new(10);
        assert_eq!(mgr.coverage(OperatingMode::Emergency), 0.0);
        mgr.inject(VehicleId(0), OperatingMode::Emergency);
        assert_eq!(mgr.mode(VehicleId(0)), OperatingMode::Emergency);
        assert!((mgr.coverage(OperatingMode::Emergency) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gossip_spreads_down_a_chain() {
        let (positions, table) = line_world(10, 100.0);
        let mut mgr = ModeManager::new(10);
        mgr.inject(VehicleId(0), OperatingMode::Emergency);
        let mut rng = SimRng::seed_from(1);
        let channel = Channel::dsrc();
        let mut rounds = 0;
        while mgr.coverage(OperatingMode::Emergency) < 1.0 && rounds < 100 {
            mgr.gossip_round(&table, &positions, &channel, &mut rng);
            rounds += 1;
        }
        assert_eq!(mgr.coverage(OperatingMode::Emergency), 1.0);
        // A 10-chain with only adjacent links needs at least 9 rounds.
        assert!(rounds >= 9, "rounds {rounds}");
    }

    #[test]
    fn severity_precedence() {
        let (positions, table) = line_world(3, 50.0);
        let mut mgr = ModeManager::new(3);
        mgr.inject(VehicleId(0), OperatingMode::Disaster);
        mgr.inject(VehicleId(2), OperatingMode::Emergency);
        let mut rng = SimRng::seed_from(2);
        let channel = Channel::dsrc();
        for _ in 0..20 {
            mgr.gossip_round(&table, &positions, &channel, &mut rng);
        }
        // Disaster wins everywhere.
        for i in 0..3 {
            assert_eq!(mgr.mode(VehicleId(i)), OperatingMode::Disaster);
        }
    }

    #[test]
    fn isolated_vehicles_never_switch() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(10_000.0, 0.0)];
        let table = NeighborTable::build(&positions, &[true, true], 150.0);
        let mut mgr = ModeManager::new(2);
        mgr.inject(VehicleId(0), OperatingMode::Emergency);
        let mut rng = SimRng::seed_from(3);
        let channel = Channel::dsrc();
        for _ in 0..10 {
            mgr.gossip_round(&table, &positions, &channel, &mut rng);
        }
        assert_eq!(mgr.mode(VehicleId(1)), OperatingMode::Normal);
    }

    #[test]
    fn observed_gossip_matches_plain_stream() {
        let (positions, table) = line_world(10, 100.0);
        let channel = Channel::dsrc();
        let run = |rec: &mut Option<vc_obs::Recorder>| {
            let mut mgr = ModeManager::new(10);
            mgr.inject(VehicleId(0), OperatingMode::Emergency);
            let mut rng = SimRng::seed_from(1);
            let mut rounds = 0u64;
            while mgr.coverage(OperatingMode::Emergency) < 1.0 && rounds < 100 {
                let at = vc_sim::time::SimTime::from_secs(rounds);
                mgr.gossip_round_obs(
                    &table,
                    &positions,
                    &channel,
                    &mut rng,
                    OperatingMode::Emergency,
                    at,
                    rec.as_mut(),
                );
                rounds += 1;
            }
            rounds
        };
        let plain = run(&mut None);
        let mut rec = Some(vc_obs::Recorder::new());
        let probed = run(&mut rec);
        assert_eq!(plain, probed, "recorder must not change propagation");
        let rec = rec.unwrap();
        assert_eq!(rec.hub().counter("cloud.mode.switch"), probed);
        assert_eq!(rec.hub().counter("cloud.mode.switched"), 9);
        assert_eq!(rec.hub().gauge("cloud.mode.coverage"), Some(1.0));
    }

    #[test]
    fn gossip_round_counts_switches() {
        let (positions, table) = line_world(2, 50.0);
        let mut mgr = ModeManager::new(2);
        mgr.inject(VehicleId(0), OperatingMode::Emergency);
        let mut rng = SimRng::seed_from(4);
        let channel = Channel::dsrc();
        let mut total = 0;
        for _ in 0..10 {
            total += mgr.gossip_round(&table, &positions, &channel, &mut rng);
        }
        assert_eq!(total, 1, "exactly one vehicle had to switch");
    }
}
