//! Property-based tests for scheduler conservation laws and replication.

use vc_cloud::prelude::*;
use vc_sim::node::{SaeLevel, VehicleId};
use vc_sim::rng::SimRng;
use vc_sim::time::{SimDuration, SimTime};
use vc_testkit::prop::strategy::{any_u64, any_u8, from_fn, vec, FromFn};
use vc_testkit::{prop, prop_assert, prop_assert_eq, prop_assume};

fn hosts_strategy() -> FromFn<impl Fn(&mut SimRng) -> Vec<HostInfo>> {
    from_fn(|rng| {
        let n = rng.range_u64(1, 12) as usize;
        (0..n)
            .map(|i| HostInfo {
                id: VehicleId(i as u32),
                cpu_gflops: rng.range_f64(10.0, 200.0),
                automation: SaeLevel::L4,
                stay_estimate_s: rng.range_f64(5.0, 500.0),
            })
            .collect()
    })
}

prop! {
    #![cases(64)]

    // Conservation: every submitted task is exactly one of queued, running,
    // completed, expired — and executed work never exceeds offered capacity.
    #[test]
    fn scheduler_conserves_tasks(
        hosts in hosts_strategy(),
        works in vec(10.0f64..2000.0, 1..20),
        churn_seed in any_u64(),
        ticks in 10usize..80,
    ) {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        for (i, w) in works.iter().enumerate() {
            sched.submit(TaskSpec::compute(TaskId(i as u64), *w), SimTime::ZERO);
        }
        let mut rng = SimRng::seed_from(churn_seed);
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            now += SimDuration::from_secs(1);
            // Random churn: each host present with 80% probability.
            let present: Vec<HostInfo> =
                hosts.iter().filter(|_| rng.chance(0.8)).copied().collect();
            sched.tick(now, 1.0, &present);
        }
        let mut queued = 0u64;
        let mut running = 0u64;
        let mut completed = 0u64;
        let mut expired = 0u64;
        for t in sched.tasks() {
            match t.status {
                TaskStatus::Queued => queued += 1,
                TaskStatus::Running { .. } => running += 1,
                TaskStatus::Completed { .. } => completed += 1,
                TaskStatus::Expired => expired += 1,
            }
        }
        prop_assert_eq!(queued + running + completed + expired, works.len() as u64);
        prop_assert_eq!(completed, sched.stats().completed);
        let stats = sched.stats();
        prop_assert!(stats.executed_gflop <= stats.offered_gflop + 1e-6,
            "executed {} > offered {}", stats.executed_gflop, stats.offered_gflop);
        // Completed tasks really did their work.
        let total_completed_work: f64 = sched
            .tasks()
            .filter(|t| t.is_completed())
            .map(|t| t.spec.work_gflop)
            .sum();
        prop_assert!(stats.executed_gflop + 1e-6 >= total_completed_work);
    }

    // Running tasks always sit on hosts from the current set, one per host.
    #[test]
    fn one_task_per_host_invariant(
        hosts in hosts_strategy(),
        n_tasks in 1usize..30,
        ticks in 1usize..30,
    ) {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        for i in 0..n_tasks {
            sched.submit(TaskSpec::compute(TaskId(i as u64), 500.0), SimTime::ZERO);
        }
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            now += SimDuration::from_secs(1);
            sched.tick(now, 1.0, &hosts);
            let mut seen = std::collections::BTreeSet::new();
            for t in sched.tasks() {
                if let TaskStatus::Running { host, .. } = t.status {
                    prop_assert!(hosts.iter().any(|h| h.id == host));
                    prop_assert!(seen.insert(host), "host {host} runs two tasks");
                }
            }
        }
    }

    // Replication: holders are always distinct, bounded by the candidate
    // pool, and repair never exceeds the target.
    #[test]
    fn replication_bounds(
        pool in 1usize..40,
        replicas in 1usize..10,
        content in vec(any_u8(), 1..2048),
        seed in any_u64(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let hosts: Vec<ReplicaHost> = (0..pool)
            .map(|i| ReplicaHost { id: VehicleId(i as u32), stay_estimate_s: (i as f64) * 7.0 })
            .collect();
        let mut mgr = ReplicationManager::new();
        for strategy in [PlacementStrategy::Random, PlacementStrategy::StabilityRanked] {
            let fid = FileId(strategy as u64);
            let file = mgr.publish(fid, &content, replicas, &hosts, strategy, &mut rng);
            prop_assert!(file.holders.len() <= replicas.min(pool));
            let mut distinct = file.holders.clone();
            distinct.sort();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), file.holders.len(), "duplicate holders");
            // Repair to target never overshoots.
            mgr.repair(fid, replicas, &|_| true, &hosts, strategy, &mut rng);
            prop_assert!(mgr.file(fid).unwrap().holders.len() <= replicas.min(pool));
        }
    }

    // Stay estimation: the kinematic exit time is consistent — simulating
    // the straight-line motion exits the disk within ~the predicted time.
    #[test]
    fn kinematic_exit_time_is_accurate(
        px in -90.0f64..90.0, py in -90.0f64..90.0,
        vx in -30.0f64..30.0, vy in -30.0f64..30.0,
    ) {
        use vc_cloud::stay::time_to_exit_disk;
        use vc_sim::geom::Point;
        let pos = Point::new(px, py);
        let vel = Point::new(vx, vy);
        prop_assume!(pos.norm() < 100.0);
        prop_assume!(vel.norm() > 0.5);
        let t = time_to_exit_disk(pos, vel, Point::new(0.0, 0.0), 100.0);
        if t < 3600.0 {
            let before = pos + vel * (t - 0.01).max(0.0);
            let after = pos + vel * (t + 0.01);
            prop_assert!(before.norm() <= 100.0 + 1.0, "inside just before exit");
            prop_assert!(after.norm() >= 100.0 - 1.0, "outside just after exit");
        }
    }
}
