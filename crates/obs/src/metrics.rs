//! The shared metrics registry: counters, gauges, and fixed-bucket
//! log-scale histograms under hierarchical `component.metric` names.
//!
//! [`Histogram`] exists because `vc_sim::metrics::Summary` keeps every
//! sample — fine for a few thousand experiment data points, wrong for
//! per-message radio telemetry. A histogram is 64 buckets of `u64` no
//! matter how many samples it absorbs, at the price of approximate
//! percentiles (exact to the power-of-two bucket that contains them).

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};

use vc_testkit::json::Json;

/// Number of fixed buckets in a [`Histogram`].
pub const BUCKETS: usize = 64;

/// A fixed-memory log-scale histogram for non-negative samples.
///
/// Bucket 0 covers `[0, 1)`; bucket `i >= 1` covers `[2^(i-1), 2^i)`; the
/// last bucket additionally absorbs everything beyond its lower bound.
/// Negative samples clamp into bucket 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a sample falls into.
    pub fn bucket_index(x: f64) -> usize {
        if x.is_nan() || x < 1.0 {
            // NaN and everything below 1 (including negatives) land here.
            return 0;
        }
        ((x.log2() as usize) + 1).min(BUCKETS - 1)
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        match i {
            0 => (0.0, 1.0),
            i => (2f64.powi(i as i32 - 1), 2f64.powi(i as i32)),
        }
    }

    /// Absorbs one sample.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.buckets[Histogram::bucket_index(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (`q` in `[0, 1]`) by nearest-rank over the
    /// cumulative bucket counts. Returns the upper bound of the bucket the
    /// rank falls in, clamped to the exact observed maximum; `None` when
    /// empty.
    pub fn approx_percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = Histogram::bucket_bounds(i);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// The standard p50/p90/p99 latency summary of this histogram, `None`
    /// when empty.
    ///
    /// One call instead of three [`Histogram::approx_percentile`]s:
    /// `vcstat --histograms`, `vcload`, and the E19 service experiment all
    /// report the same three percentiles, so the extraction lives here.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Some(Quantiles {
            p50: self.approx_percentile(0.50)?,
            p90: self.approx_percentile(0.90)?,
            p99: self.approx_percentile(0.99)?,
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| {
            let (lo, hi) = Histogram::bucket_bounds(i);
            (lo, hi, n)
        })
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A p50/p90/p99 summary extracted from a [`Histogram`] with
/// [`Histogram::quantiles`]. Values inherit the histogram's bucket
/// resolution (exact to the power-of-two bucket, clamped to the observed
/// maximum).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Quantiles {
    /// Renders as an insertion-ordered `{"p50":…,"p90":…,"p99":…}` object
    /// (the schema `vcload` and `vcstat --json` artifacts share).
    pub fn to_json(self) -> Json {
        Json::object([
            ("p50", Json::from(self.p50)),
            ("p90", Json::from(self.p90)),
            ("p99", Json::from(self.p99)),
        ])
    }
}

/// A registry of named counters, gauges, and [`Histogram`]s.
///
/// Names are hierarchical dot-separated paths, component first:
/// `sim.radio.rx`, `auth.handshake.us`, `cloud.handover`. `BTreeMap`
/// storage keeps iteration (and thus every rendered artifact)
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsHub {
    /// An empty registry.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one sample into the named histogram, creating it if needed.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(sample);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, `None` when never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, `None` when never observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// An immutable point-in-time copy for later [`Snapshot::diff`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Names and values of all counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Names and values of all gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Names and contents of all histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A frozen copy of a [`MetricsHub`], taken with [`MetricsHub::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// The snapshot of an empty hub (everything diffs against zero).
    pub fn empty() -> Snapshot {
        Snapshot::default()
    }
}

impl Snapshot {
    /// Counter value at snapshot time (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at snapshot time, `None` when never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram state at snapshot time, `None` when never observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The change since an `earlier` snapshot: counters subtract
    /// (saturating), gauges report their later value, histogram counts
    /// subtract per name. Metrics that appeared after `earlier` diff
    /// against zero/empty.
    pub fn diff(&self, earlier: &Snapshot) -> SnapshotDiff {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = self.gauges.clone();
        let histogram_counts = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let before = earlier.histogram(k).map_or(0, Histogram::count);
                (k.clone(), v.count().saturating_sub(before))
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        SnapshotDiff { counters, gauges, histogram_counts }
    }

    /// Renders the snapshot as an insertion-ordered JSON object with
    /// `counters`, `gauges`, and `histograms` sections.
    pub fn to_json(&self) -> Json {
        let counters = self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v)));
        let gauges = self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v)));
        let hists = self.histograms.iter().map(|(k, h)| {
            let mut pairs: Vec<(String, Json)> =
                vec![("count".into(), Json::from(h.count())), ("sum".into(), Json::from(h.sum()))];
            if let (Some(lo), Some(hi)) = (h.min(), h.max()) {
                pairs.push(("min".into(), Json::from(lo)));
                pairs.push(("max".into(), Json::from(hi)));
                pairs.push(("p95".into(), Json::from(h.approx_percentile(0.95).unwrap())));
            }
            (k.clone(), Json::Obj(pairs))
        });
        Json::object([
            ("counters", Json::Obj(counters.collect())),
            ("gauges", Json::Obj(gauges.collect())),
            ("histograms", Json::Obj(hists.collect())),
        ])
    }
}

/// The change between two [`Snapshot`]s; see [`Snapshot::diff`].
#[derive(Debug, Clone)]
pub struct SnapshotDiff {
    /// Counter increments over the interval (zero-delta entries omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the end of the interval.
    pub gauges: BTreeMap<String, f64>,
    /// New histogram samples over the interval (zero-delta entries
    /// omitted).
    pub histogram_counts: BTreeMap<String, u64>,
}

/// One windowed time-series sample: what changed in the hub over one tick.
#[derive(Debug, Clone)]
pub struct TickSample {
    /// Zero-based tick index over the whole run (keeps counting even after
    /// the window has wrapped, so the export names the retained range).
    pub seq: u64,
    /// Sim-time of the tick, microseconds.
    pub at_us: u64,
    /// Hub deltas since the previous tick.
    pub diff: SnapshotDiff,
}

impl TickSample {
    /// Renders the sample as one compact, insertion-ordered JSON object.
    pub fn to_json(&self) -> Json {
        let counters = self.diff.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v)));
        let gauges = self.diff.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v)));
        let hists = self.diff.histogram_counts.iter().map(|(k, &v)| (k.clone(), Json::from(v)));
        Json::object([
            ("tick", Json::from(self.seq)),
            ("at_us", Json::from(self.at_us)),
            ("counters", Json::Obj(counters.collect())),
            ("gauges", Json::Obj(gauges.collect())),
            ("histogram_counts", Json::Obj(hists.collect())),
        ])
    }
}

/// A fixed-capacity ring of per-tick [`MetricsHub`] deltas: the windowed
/// time-series mode.
///
/// Each [`TimeSeries::tick`] snapshots the hub, diffs it against the
/// previous tick's snapshot, and pushes the delta; once the window is full
/// the oldest sample is dropped (and counted, mirroring
/// [`Recorder::ring`](crate::Recorder::ring)). Memory is bounded by the
/// capacity regardless of run length, so million-tick runs can stream
/// per-tick telemetry without keeping it all.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    cap: usize,
    samples: VecDeque<TickSample>,
    last: Snapshot,
    seq: u64,
    dropped: u64,
}

impl TimeSeries {
    /// A window keeping the most recent `capacity` ticks (min 1).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            cap: capacity.max(1),
            samples: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            last: Snapshot::empty(),
            seq: 0,
            dropped: 0,
        }
    }

    /// Closes the current tick: records the hub's delta since the previous
    /// tick at sim-time `at_us`.
    pub fn tick(&mut self, at_us: u64, hub: &MetricsHub) {
        let now = hub.snapshot();
        let diff = now.diff(&self.last);
        if self.samples.len() >= self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(TickSample { seq: self.seq, at_us, diff });
        self.seq += 1;
        self.last = now;
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TickSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no tick has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total ticks recorded over the series' lifetime.
    pub fn ticks(&self) -> u64 {
        self.seq
    }

    /// Samples discarded because the window wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Writes the series as JSON Lines: a meta header (`ticks`, `dropped`,
    /// `capacity` — so consumers can tell a truncated window from a full
    /// one), then one [`TickSample`] object per line, oldest first.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let meta = Json::object([(
            "timeseries",
            Json::object([
                ("version", Json::from(1u64)),
                ("capacity", Json::from(self.cap as u64)),
                ("ticks", Json::from(self.seq)),
                ("dropped", Json::from(self.dropped)),
            ]),
        )]);
        out.write_all(meta.to_string_compact().as_bytes())?;
        out.write_all(b"\n")?;
        for sample in &self.samples {
            out.write_all(sample.to_json().to_string_compact().as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

impl crate::mem::MemSize for Histogram {
    // Buckets are an inline `[u64; 64]`; a histogram owns no heap.
    fn mem_bytes(&self) -> u64 {
        0
    }
}

impl crate::mem::MemSize for MetricsHub {
    fn mem_bytes(&self) -> u64 {
        self.counters.mem_bytes() + self.gauges.mem_bytes() + self.histograms.mem_bytes()
    }
}

impl crate::mem::MemSize for Snapshot {
    fn mem_bytes(&self) -> u64 {
        self.counters.mem_bytes() + self.gauges.mem_bytes() + self.histograms.mem_bytes()
    }
}

impl crate::mem::MemSize for SnapshotDiff {
    fn mem_bytes(&self) -> u64 {
        self.counters.mem_bytes() + self.gauges.mem_bytes() + self.histogram_counts.mem_bytes()
    }
}

impl crate::mem::MemSize for TickSample {
    fn mem_bytes(&self) -> u64 {
        self.diff.mem_bytes()
    }
}

impl crate::mem::MemSize for TimeSeries {
    fn mem_bytes(&self) -> u64 {
        self.samples.mem_bytes() + self.last.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // [0,1) -> 0
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.999), 0);
        assert_eq!(Histogram::bucket_index(-5.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // [1,2) -> 1, [2,4) -> 2, [4,8) -> 3 ...
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(1.999), 1);
        assert_eq!(Histogram::bucket_index(2.0), 2);
        assert_eq!(Histogram::bucket_index(3.999), 2);
        assert_eq!(Histogram::bucket_index(4.0), 3);
        // Huge samples clamp into the last bucket.
        assert_eq!(Histogram::bucket_index(f64::MAX), BUCKETS - 1);
        // Bounds invert the index mapping.
        assert_eq!(Histogram::bucket_bounds(0), (0.0, 1.0));
        assert_eq!(Histogram::bucket_bounds(1), (1.0, 2.0));
        assert_eq!(Histogram::bucket_bounds(3), (4.0, 8.0));
        for i in 1..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(hi, lo * 2.0);
        }
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let mut h = Histogram::new();
        for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(100.0));
        assert!((h.mean().unwrap() - 21.7).abs() < 1e-9);
        // p50 rank=3 falls in bucket [2,4); upper bound 4.
        assert_eq!(h.approx_percentile(0.5), Some(4.0));
        // p100 clamps to the exact max, not the bucket bound 128.
        assert_eq!(h.approx_percentile(1.0), Some(100.0));
        // NaN samples are ignored.
        h.record(f64::NAN);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_match_the_ad_hoc_percentile_calls() {
        assert_eq!(Histogram::new().quantiles(), None);
        let mut h = Histogram::new();
        for x in [1.0, 3.0, 9.0, 40.0, 800.0, 800.0, 1500.0] {
            h.record(x);
        }
        let q = h.quantiles().unwrap();
        assert_eq!(q.p50, h.approx_percentile(0.50).unwrap());
        assert_eq!(q.p90, h.approx_percentile(0.90).unwrap());
        assert_eq!(q.p99, h.approx_percentile(0.99).unwrap());
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99);
        assert_eq!(
            q.to_json().to_string_compact(),
            format!(r#"{{"p50":{},"p90":{},"p99":{}}}"#, q.p50, q.p90, q.p99)
        );
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(50.0);
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0.2));
        assert_eq!(a.max(), Some(50.0));
        assert_eq!(a.nonzero_buckets().count(), 3);
    }

    #[test]
    fn hub_registers_and_snapshots_diff() {
        let mut hub = MetricsHub::new();
        hub.counter_add("net.forward", 3);
        hub.gauge_set("sim.queue.depth", 7.0);
        hub.observe("auth.handshake.us", 1500.0);
        let before = hub.snapshot();
        hub.counter_add("net.forward", 2);
        hub.counter_add("cloud.place", 1);
        hub.gauge_set("sim.queue.depth", 4.0);
        hub.observe("auth.handshake.us", 900.0);
        let after = hub.snapshot();
        let diff = after.diff(&before);
        assert_eq!(diff.counters.get("net.forward"), Some(&2));
        assert_eq!(diff.counters.get("cloud.place"), Some(&1));
        assert_eq!(diff.gauges.get("sim.queue.depth"), Some(&4.0));
        assert_eq!(diff.histogram_counts.get("auth.handshake.us"), Some(&1));
        // Unchanged counters are omitted from the diff.
        let same = after.diff(&after);
        assert!(same.counters.is_empty());
    }

    #[test]
    fn timeseries_diffs_per_tick_and_wraps() {
        let mut hub = MetricsHub::new();
        let mut ts = TimeSeries::new(2);
        hub.counter_add("net.routing.deliver", 3);
        hub.gauge_set("net.copies.live", 5.0);
        ts.tick(1_000, &hub);
        hub.counter_add("net.routing.deliver", 4);
        hub.observe("net.e2e.s", 0.25);
        ts.tick(2_000, &hub);
        // Tick deltas, not cumulative totals.
        let samples: Vec<&TickSample> = ts.samples().collect();
        assert_eq!(samples[0].diff.counters.get("net.routing.deliver"), Some(&3));
        assert_eq!(samples[1].diff.counters.get("net.routing.deliver"), Some(&4));
        assert_eq!(samples[1].diff.histogram_counts.get("net.e2e.s"), Some(&1));
        // A quiet tick still lands (empty diff) and the window wraps.
        ts.tick(3_000, &hub);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.ticks(), 3);
        assert_eq!(ts.dropped(), 1);
        assert_eq!(ts.samples().next().unwrap().seq, 1);
        let last = ts.samples().last().unwrap();
        assert!(last.diff.counters.is_empty());
        // Gauges report their current value every tick.
        assert_eq!(last.diff.gauges.get("net.copies.live"), Some(&5.0));
    }

    #[test]
    fn timeseries_jsonl_schema_is_stable() {
        let mut hub = MetricsHub::new();
        let mut ts = TimeSeries::new(8);
        hub.counter_add("sim.radio.tx", 2);
        ts.tick(500_000, &hub);
        let mut out = Vec::new();
        ts.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"timeseries":{"version":1,"capacity":8,"ticks":1,"dropped":0}}"#,
                r#"{"tick":0,"at_us":500000,"counters":{"sim.radio.tx":2},"gauges":{},"histogram_counts":{}}"#,
            ]
        );
    }

    #[test]
    fn timeseries_header_with_zero_ticks_is_the_whole_export() {
        // An untouched window exports exactly one line: the meta header
        // with ticks and dropped both zero.
        let ts = TimeSeries::new(3);
        let mut out = Vec::new();
        ts.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.lines().collect::<Vec<_>>(),
            vec![r#"{"timeseries":{"version":1,"capacity":3,"ticks":0,"dropped":0}}"#]
        );
    }

    #[test]
    fn timeseries_single_tick_header_counts_one() {
        let mut ts = TimeSeries::new(3);
        ts.tick(1_000, &MetricsHub::new());
        let mut out = Vec::new();
        ts.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"timeseries":{"version":1,"capacity":3,"ticks":1,"dropped":0}}"#);
    }

    #[test]
    fn timeseries_wrap_exactly_at_capacity_drops_nothing() {
        // Filling the window to exactly its capacity must not count a
        // drop; one tick past capacity must count exactly one.
        let hub = MetricsHub::new();
        let mut ts = TimeSeries::new(3);
        for i in 0..3u64 {
            ts.tick(i * 1_000, &hub);
        }
        assert_eq!((ts.len(), ts.ticks(), ts.dropped()), (3, 3, 0));
        let header = |ts: &TimeSeries| {
            let mut out = Vec::new();
            ts.write_jsonl(&mut out).unwrap();
            String::from_utf8(out).unwrap().lines().next().unwrap().to_owned()
        };
        assert_eq!(
            header(&ts),
            r#"{"timeseries":{"version":1,"capacity":3,"ticks":3,"dropped":0}}"#
        );
        ts.tick(3_000, &hub);
        assert_eq!((ts.len(), ts.ticks(), ts.dropped()), (3, 4, 1));
        assert_eq!(
            header(&ts),
            r#"{"timeseries":{"version":1,"capacity":3,"ticks":4,"dropped":1}}"#
        );
        // The oldest sample rolled off: the retained range starts at seq 1.
        assert_eq!(ts.samples().next().unwrap().seq, 1);
    }

    #[test]
    fn hub_and_timeseries_mem_bytes_grow_with_content() {
        use crate::mem::MemSize;
        let mut hub = MetricsHub::new();
        assert_eq!(hub.mem_bytes(), 0);
        hub.counter_add("net.forward", 1);
        hub.gauge_set("mem.fleet.bytes", 1.0);
        hub.observe("net.e2e.s", 0.5);
        let one = hub.mem_bytes();
        assert!(one > 0);
        for i in 0..64 {
            hub.counter_add(&format!("sim.shard{i}.steps"), 1);
        }
        assert!(hub.mem_bytes() > one);

        let mut ts = TimeSeries::new(8);
        let empty = ts.mem_bytes();
        ts.tick(1_000, &hub);
        assert!(ts.mem_bytes() > empty, "snapshot + sample should add heap");
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut hub = MetricsHub::new();
        hub.counter_add("z.last", 1);
        hub.counter_add("a.first", 2);
        hub.observe("m.us", 3.0);
        let s = hub.snapshot().to_json().to_string_compact();
        // BTreeMap ordering: a.first before z.last regardless of insertion.
        assert!(s.find("a.first").unwrap() < s.find("z.last").unwrap());
        assert!(s.contains(r#""m.us":{"count":1,"sum":3,"min":3,"max":3,"p95":3}"#));
    }
}
