//! Wall-clock profiling: scoped frames, a hierarchical call tree, and
//! deterministic-schema exports.
//!
//! This is the *other half* of observability from [`crate::record`]: the
//! [`Recorder`](crate::Recorder) deliberately never touches the wall clock
//! (traces must be byte-reproducible), so nothing in the trace says where
//! *real* time went. The [`Profiler`] fills that gap. Instrumented code
//! opens a [`Frame`] guard keyed by a static label; on drop the elapsed
//! wall-clock nanoseconds are folded into a call tree that aggregates
//! per-label `calls`, `total_ns`, and (at export) `self_ns`.
//!
//! The profiler is reached through a **thread-local current profiler**
//! rather than being threaded through every signature: [`install`] a
//! profiler, run the workload, [`take`] it back out. When no profiler is
//! installed, [`frame`] is a thread-local read and a branch — no clock is
//! read — so permanently-instrumented hot paths cost near zero in normal
//! runs. [`timed_frame`] always reads the clock and [`Frame::finish`]
//! returns the elapsed time, so call sites that *use* the measurement
//! (e.g. latency tables) work identically with or without a profiler.
//!
//! Profiling is strictly additive: frames never touch RNG streams, sim
//! time, or any result; plain-vs-profiled tests in `vc-bench` hold traces
//! byte-identical under `--profile`.
//!
//! ```
//! use vc_obs::profile;
//!
//! profile::install(profile::Profiler::new());
//! {
//!     let _outer = profile::frame("outer");
//!     let _inner = profile::frame("inner");
//! } // frames close in LIFO order here
//! let prof = profile::take().unwrap();
//! assert_eq!(prof.calls(&["outer"]), Some(1));
//! assert_eq!(prof.calls(&["outer", "inner"]), Some(1));
//! assert!(prof.total_ns(&["outer"]) >= prof.total_ns(&["outer", "inner"]));
//! ```
//!
//! # Exports
//!
//! * [`Profiler::to_json`] — a `profile.json` tree:
//!   `{"version":1,"total_ns":…,"frames":[{"label","calls","total_ns",
//!   "self_ns","allocs","bytes","children":[…]},…]}` with children sorted
//!   by label, so the *schema and shape* are deterministic (the nanosecond
//!   values are wall clock and are not). `allocs`/`bytes` count the heap
//!   allocations observed on the profiling thread while each frame was
//!   open (children included, like `total_ns`); they stay zero unless the
//!   binary installed `vc_obs::counting_allocator!`.
//! * [`Profiler::collapsed`] — collapsed-stack text, one
//!   `root;child;leaf <self_ns>` line per frame with nonzero self time,
//!   sorted lexically: feed it straight to any flamegraph renderer.
//!   [`Profiler::collapsed_bytes`] is the allocation twin, weighted by
//!   self heap bytes.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use vc_testkit::json::Json;

#[derive(Debug)]
struct Node {
    label: &'static str,
    calls: u64,
    total_ns: u64,
    /// Heap allocations performed on this thread while the frame was open
    /// (children included, like `total_ns`). Zero unless the binary
    /// installed `vc_obs::counting_allocator!`.
    allocs: u64,
    /// Heap bytes allocated while the frame was open (children included).
    bytes: u64,
    children: Vec<usize>,
}

/// A wall-clock call-tree profiler. See the [module docs](self) for the
/// guard-based API; [`Profiler::enter`]/[`Profiler::exit`] are the
/// low-level equivalents for code that cannot use RAII scoping.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// True when no frame has ever been opened.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Opens a frame as a child of the innermost open frame (or as a root).
    /// Frames with the same label under the same parent aggregate into one
    /// tree node.
    pub fn enter(&mut self, label: &'static str) {
        let siblings = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        let existing = siblings.iter().copied().find(|&i| self.nodes[i].label == label);
        let idx = match existing {
            Some(i) => i,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    label,
                    calls: 0,
                    total_ns: 0,
                    allocs: 0,
                    bytes: 0,
                    children: Vec::new(),
                });
                match self.stack.last() {
                    Some(&parent) => self.nodes[parent].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.stack.push(idx);
    }

    /// Closes the innermost open frame, attributing `elapsed_ns` to it.
    /// Ignored when no frame is open.
    pub fn exit(&mut self, elapsed_ns: u64) {
        self.exit_with(elapsed_ns, 0, 0);
    }

    /// [`Profiler::exit`] carrying the allocation activity observed while
    /// the frame was open: `allocs` heap allocations totalling `bytes`
    /// (cumulative with children, like `elapsed_ns`). The RAII [`Frame`]
    /// guard captures these from `vc_obs::mem`'s thread counters.
    pub fn exit_with(&mut self, elapsed_ns: u64, allocs: u64, bytes: u64) {
        if let Some(idx) = self.stack.pop() {
            self.nodes[idx].calls += 1;
            self.nodes[idx].total_ns += elapsed_ns;
            self.nodes[idx].allocs += allocs;
            self.nodes[idx].bytes += bytes;
        }
    }

    /// Number of frames currently open (0 once every guard has dropped).
    pub fn open_frames(&self) -> usize {
        self.stack.len()
    }

    fn find(&self, path: &[&str]) -> Option<usize> {
        let mut siblings = &self.roots;
        let mut found = None;
        for label in path {
            let idx = siblings.iter().copied().find(|&i| self.nodes[i].label == *label)?;
            siblings = &self.nodes[idx].children;
            found = Some(idx);
        }
        found
    }

    /// Total closed calls of the frame at `path` (labels root-first), or
    /// `None` when no such frame exists.
    pub fn calls(&self, path: &[&str]) -> Option<u64> {
        self.find(path).map(|i| self.nodes[i].calls)
    }

    /// Accumulated wall-clock nanoseconds of the frame at `path`, or `None`
    /// when no such frame exists.
    pub fn total_ns(&self, path: &[&str]) -> Option<u64> {
        self.find(path).map(|i| self.nodes[i].total_ns)
    }

    /// Self time (total minus the children's totals, floored at zero) of
    /// the frame at `path`.
    pub fn self_ns(&self, path: &[&str]) -> Option<u64> {
        self.find(path).map(|i| self.node_self_ns(i))
    }

    /// Heap allocations recorded for the frame at `path` (children
    /// included, like [`Profiler::total_ns`]), or `None` when no such
    /// frame exists. Zero without the counting allocator installed.
    pub fn allocs(&self, path: &[&str]) -> Option<u64> {
        self.find(path).map(|i| self.nodes[i].allocs)
    }

    /// Heap bytes allocated while the frame at `path` was open (children
    /// included). Zero without the counting allocator installed.
    pub fn alloc_bytes(&self, path: &[&str]) -> Option<u64> {
        self.find(path).map(|i| self.nodes[i].bytes)
    }

    fn node_self_ns(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let children: u64 = node.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        node.total_ns.saturating_sub(children)
    }

    fn node_self_bytes(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let children: u64 = node.children.iter().map(|&c| self.nodes[c].bytes).sum();
        node.bytes.saturating_sub(children)
    }

    fn sorted(&self, indices: &[usize]) -> Vec<usize> {
        let mut sorted = indices.to_vec();
        sorted.sort_by_key(|&i| self.nodes[i].label);
        sorted
    }

    fn node_to_json(&self, idx: usize) -> Json {
        let node = &self.nodes[idx];
        let mut pairs = vec![
            ("label".to_string(), Json::from(node.label)),
            ("calls".to_string(), Json::from(node.calls)),
            ("total_ns".to_string(), Json::from(node.total_ns)),
            ("self_ns".to_string(), Json::from(self.node_self_ns(idx))),
            ("allocs".to_string(), Json::from(node.allocs)),
            ("bytes".to_string(), Json::from(node.bytes)),
        ];
        if !node.children.is_empty() {
            let children = self.sorted(&node.children);
            pairs.push((
                "children".to_string(),
                Json::array(children.into_iter().map(|c| self.node_to_json(c))),
            ));
        }
        Json::Obj(pairs)
    }

    /// Renders the call tree as the `profile.json` document (see the
    /// [module docs](self) for the schema). Children sort by label, so the
    /// document *shape* is deterministic for a deterministic program.
    pub fn to_json(&self) -> Json {
        let total: u64 = self.roots.iter().map(|&i| self.nodes[i].total_ns).sum();
        let roots = self.sorted(&self.roots);
        Json::object([
            ("version", Json::from(1u64)),
            ("total_ns", Json::from(total)),
            ("frames", Json::array(roots.into_iter().map(|i| self.node_to_json(i)))),
        ])
    }

    /// Renders collapsed-stack text: one `a;b;c <self_ns>` line per frame
    /// with nonzero self time, sorted lexically — the input format
    /// flamegraph tools consume.
    pub fn collapsed(&self) -> String {
        self.collapsed_by(&Profiler::node_self_ns)
    }

    /// Collapsed-stack text weighted by *self heap bytes* instead of self
    /// nanoseconds — the same flamegraph input format, rendering where the
    /// allocations (not the time) went. All-zero without the counting
    /// allocator installed (`experiments --folded-alloc`).
    pub fn collapsed_bytes(&self) -> String {
        self.collapsed_by(&Profiler::node_self_bytes)
    }

    fn collapsed_by(&self, weight: &dyn Fn(&Profiler, usize) -> u64) -> String {
        let mut lines = Vec::new();
        let mut stack: Vec<&'static str> = Vec::new();
        for &root in &self.sorted(&self.roots) {
            self.collect_collapsed(root, &mut stack, &mut lines, weight);
        }
        lines.sort();
        let mut out = String::new();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    fn collect_collapsed(
        &self,
        idx: usize,
        stack: &mut Vec<&'static str>,
        lines: &mut Vec<String>,
        weight: &dyn Fn(&Profiler, usize) -> u64,
    ) {
        stack.push(self.nodes[idx].label);
        let w = weight(self, idx);
        if w > 0 {
            lines.push(format!("{} {}", stack.join(";"), w));
        }
        for &child in &self.sorted(&self.nodes[idx].children) {
            self.collect_collapsed(child, stack, lines, weight);
        }
        stack.pop();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(u64, Profiler)>> = const { RefCell::new(None) };
    static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Installs `profiler` as this thread's current profiler, returning the
/// previously installed one (if any). Do not install or [`take`] while
/// frames are open: open guards belong to the profiler they were opened
/// against and will not report into a different one.
pub fn install(profiler: Profiler) -> Option<Profiler> {
    let id = NEXT_ID.with(|n| {
        let id = n.get();
        n.set(id + 1);
        id
    });
    CURRENT.with(|c| c.borrow_mut().replace((id, profiler))).map(|(_, p)| p)
}

/// Removes and returns this thread's current profiler. Call after every
/// frame has closed (see [`Profiler::open_frames`]).
pub fn take() -> Option<Profiler> {
    CURRENT.with(|c| c.borrow_mut().take()).map(|(_, p)| p)
}

/// True when a profiler is installed on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// A scoped profiling frame; closes (and records) when dropped. Obtain via
/// [`frame`] or [`timed_frame`].
#[derive(Debug)]
#[must_use = "a frame measures the scope it lives in; bind it to a variable"]
pub struct Frame {
    start: Option<Instant>,
    armed: Option<u64>,
    /// Thread alloc counters `(allocs, bytes)` at open; only snapshotted
    /// when a profiler is armed, so unprofiled frames stay two TLS reads.
    alloc_start: Option<(u64, u64)>,
}

impl Frame {
    fn open(label: &'static str, always_time: bool) -> Frame {
        let armed = CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            cur.as_mut().map(|(id, p)| {
                p.enter(label);
                *id
            })
        });
        let start = if armed.is_some() || always_time { Some(Instant::now()) } else { None };
        let alloc_start = armed.is_some().then(crate::mem::thread_counters);
        Frame { start, armed, alloc_start }
    }

    fn close(&mut self) -> Duration {
        let elapsed = self.start.take().map(|s| s.elapsed()).unwrap_or_default();
        if let Some(id) = self.armed.take() {
            let (allocs, bytes) = match self.alloc_start.take() {
                Some((a0, b0)) => {
                    let (a1, b1) = crate::mem::thread_counters();
                    (a1 - a0, b1 - b0)
                }
                None => (0, 0),
            };
            CURRENT.with(|c| {
                if let Some((cur, p)) = c.borrow_mut().as_mut() {
                    if *cur == id {
                        p.exit_with(elapsed.as_nanos() as u64, allocs, bytes);
                    }
                }
            });
        }
        elapsed
    }

    /// Closes the frame now and returns its elapsed wall-clock time. For
    /// frames from [`frame`] without a profiler installed this is
    /// [`Duration::ZERO`]; frames from [`timed_frame`] always measure.
    pub fn finish(mut self) -> Duration {
        self.close()
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// Opens a profiling frame on this thread's current profiler. When no
/// profiler is installed this is a no-op that never reads the clock —
/// cheap enough to leave in hot paths permanently.
pub fn frame(label: &'static str) -> Frame {
    Frame::open(label, false)
}

/// Like [`frame`], but the clock is read even without a profiler, so
/// [`Frame::finish`] always returns a real measurement. Use at call sites
/// that consume the elapsed time themselves (e.g. latency tables).
pub fn timed_frame(label: &'static str) -> Frame {
    Frame::open(label, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_scoped<T>(f: impl FnOnce() -> T) -> (T, Profiler) {
        install(Profiler::new());
        let out = f();
        (out, take().expect("profiler installed"))
    }

    #[test]
    fn frames_aggregate_by_label_under_parent() {
        let ((), prof) = run_scoped(|| {
            for _ in 0..3 {
                let _outer = frame("tick");
                let _inner = frame("place");
            }
            let _other = frame("report");
        });
        assert_eq!(prof.calls(&["tick"]), Some(3));
        assert_eq!(prof.calls(&["tick", "place"]), Some(3));
        assert_eq!(prof.calls(&["report"]), Some(1));
        assert_eq!(prof.calls(&["place"]), None, "place only exists under tick");
        assert_eq!(prof.open_frames(), 0);
    }

    #[test]
    fn totals_are_internally_consistent() {
        let ((), prof) = run_scoped(|| {
            let _a = frame("a");
            {
                let _b = frame("b");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _c = frame("c");
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let a = prof.total_ns(&["a"]).unwrap();
        let b = prof.total_ns(&["a", "b"]).unwrap();
        let c = prof.total_ns(&["a", "c"]).unwrap();
        assert!(b + c <= a, "children sum {b}+{c} exceeds parent {a}");
        assert_eq!(prof.self_ns(&["a"]), Some(a - b - c));
        assert!(prof.self_ns(&["a", "b"]).unwrap() >= Duration::from_millis(2).as_nanos() as u64);
    }

    #[test]
    fn same_label_under_distinct_parents_stays_distinct() {
        let ((), prof) = run_scoped(|| {
            {
                let _x = frame("x");
                let _shared = frame("shared");
            }
            {
                let _y = frame("y");
                let _shared = frame("shared");
                let _shared2 = frame("shared"); // recursion: child of itself
            }
        });
        assert_eq!(prof.calls(&["x", "shared"]), Some(1));
        assert_eq!(prof.calls(&["y", "shared"]), Some(1));
        assert_eq!(prof.calls(&["y", "shared", "shared"]), Some(1));
    }

    #[test]
    fn uninstalled_frames_are_inert_and_timed_frames_still_measure() {
        assert!(!is_active());
        let f = frame("nobody-listening");
        assert_eq!(f.finish(), Duration::ZERO);
        let t = timed_frame("still-timed");
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.finish() >= Duration::from_millis(1));
        assert!(take().is_none());
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let (elapsed, prof) = run_scoped(|| {
            let f = timed_frame("work");
            std::thread::sleep(Duration::from_millis(1));
            f.finish()
        });
        assert!(elapsed >= Duration::from_millis(1));
        assert_eq!(prof.calls(&["work"]), Some(1));
        assert!(prof.total_ns(&["work"]).unwrap() >= 1_000_000);
    }

    #[test]
    fn json_export_shape_and_ordering() {
        let ((), prof) = run_scoped(|| {
            let _z = frame("zeta");
            drop(frame("beta"));
            drop(frame("alpha"));
        });
        let doc = prof.to_json();
        assert_eq!(doc["version"].as_f64(), Some(1.0));
        assert!(doc["total_ns"].as_f64().unwrap() >= 0.0);
        // One root; children sorted by label: alpha before beta.
        assert_eq!(doc["frames"][0]["label"], "zeta");
        assert_eq!(doc["frames"][0]["children"][0]["label"], "alpha");
        assert_eq!(doc["frames"][0]["children"][1]["label"], "beta");
        // Round-trips through the workspace parser.
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn collapsed_stacks_cover_self_time() {
        let ((), prof) = run_scoped(|| {
            let _a = frame("a");
            let _b = frame("b");
            std::thread::sleep(Duration::from_millis(1));
        });
        let folded = prof.collapsed();
        assert!(folded.contains("a;b "), "missing leaf stack: {folded}");
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack <ns>");
            assert!(!stack.is_empty());
            assert!(ns.parse::<u64>().expect("numeric weight") > 0);
        }
    }

    #[test]
    fn alloc_columns_aggregate_through_exit_with() {
        let mut p = Profiler::new();
        p.enter("round");
        p.enter("shard");
        p.exit_with(10, 3, 96);
        p.exit_with(50, 5, 128);
        assert_eq!(p.allocs(&["round"]), Some(5));
        assert_eq!(p.alloc_bytes(&["round"]), Some(128));
        assert_eq!(p.allocs(&["round", "shard"]), Some(3));
        let doc = p.to_json();
        assert_eq!(doc["frames"][0]["allocs"].as_f64(), Some(5.0));
        assert_eq!(doc["frames"][0]["bytes"].as_f64(), Some(128.0));
        // Self bytes: 128 - 96 = 32 for the root, 96 for the leaf.
        let folded = p.collapsed_bytes();
        assert!(folded.contains("round 32"), "folded: {folded}");
        assert!(folded.contains("round;shard 96"), "folded: {folded}");
    }

    #[test]
    fn frames_without_counting_allocator_report_zero_allocs() {
        // The obs test binary does not install the counting allocator, so
        // the capture degrades to zeros (never garbage), and the JSON keys
        // are still present for schema stability.
        let ((), prof) = run_scoped(|| {
            let _f = frame("alloc-free");
            let v: Vec<u8> = Vec::with_capacity(512);
            drop(v);
        });
        assert_eq!(prof.allocs(&["alloc-free"]), Some(0));
        assert_eq!(prof.alloc_bytes(&["alloc-free"]), Some(0));
    }

    #[test]
    fn take_while_frame_open_does_not_corrupt_next_profiler() {
        install(Profiler::new());
        let stale = frame("stale");
        let first = take().expect("first profiler");
        assert_eq!(first.open_frames(), 1, "frame was open at take()");
        install(Profiler::new());
        drop(stale); // belongs to the old profiler; must not pop the new one
        let second = take().expect("second profiler");
        assert!(second.is_empty());
    }
}
