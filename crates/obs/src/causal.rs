//! Causal message tracing: trace ids, carried trace context, and
//! deterministic hash-based sampling.
//!
//! A *trace* follows one message end to end through the pipeline the paper's
//! dependability argument cares about — admission, clustering, relay,
//! delivery — as a chain of `causal.*` events sharing a [`TraceId`]:
//!
//! * `causal.origin` — the message entered the system (fields: `trace`,
//!   `packet`, `src`, `dst`);
//! * `causal.hop` — a relay accepted a copy (fields: `trace`, `hop`, `from`,
//!   `to`, `latency_us`). The parent link is implicit: hop `k`'s parent is
//!   the hop `k-1` (or the origin) whose `to` equals this event's `from`;
//! * `causal.deliver` — the destination was reached (fields: `trace`,
//!   `hops`, `relay`, `dst`, `e2e_s`);
//! * `causal.drop` — a copy died undeliverable (holder went offline;
//!   fields: `trace`, `hop`, `holder`).
//!
//! Tracing every message at fleet scale would dominate the run (Kargl et
//! al.: per-message overheads are *the* cost of secure VANETs), so traces
//! are **sampled**: the [`Sampler`] hashes the scenario seed with the
//! message's canonical id and keeps one in `N`. Because the decision is a
//! pure function of `(seed, id)` — never of wall-clock, thread, or shard —
//! the sampled set is reproducible across runs and invariant under
//! `VC_SHARDS`, so sampled traces byte-compare in the determinism matrix
//! exactly like unsampled ones.
//!
//! The rate comes from `VC_TRACE_SAMPLE` (`0` = off, the default; `1` =
//! every message; `1/N` = one in N), read once per process like
//! `VC_SHARDS`, or programmatically via [`SampleRate`] for in-process
//! sweeps (E17 measures the overhead at each rate).

use std::sync::OnceLock;

/// Identifies one causal trace (one sampled message followed end to end).
///
/// Derived deterministically from the sampling hash, so the same scenario
/// seed and message id always yield the same trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id (stable across runs and shard counts; fits in 52 bits so
    /// it round-trips losslessly through the f64-backed JSON writer).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// SplitMix64 finalizer: the avalanche mix behind sampling decisions and
/// trace-id derivation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// How many messages to trace: off, every message, or one in `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRate {
    /// 0 = off, 1 = every message, N = one in N (hash-selected).
    denom: u64,
}

impl SampleRate {
    /// Trace nothing (the default; causal tracing is provably inert here).
    pub const OFF: SampleRate = SampleRate { denom: 0 };
    /// Trace every message.
    pub const ALL: SampleRate = SampleRate { denom: 1 };

    /// Trace one message in `n` (`0` is [`SampleRate::OFF`], `1` is
    /// [`SampleRate::ALL`]).
    pub fn one_in(n: u64) -> SampleRate {
        SampleRate { denom: n }
    }

    /// `true` when no message is ever traced.
    pub fn is_off(self) -> bool {
        self.denom == 0
    }

    /// The denominator: 0 (off), 1 (all), or N (one in N).
    pub fn denominator(self) -> u64 {
        self.denom
    }

    /// Parses the `VC_TRACE_SAMPLE` syntax: `"0"` (off), `"1"` (all), or
    /// `"1/N"` (one in N). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<SampleRate> {
        let s = s.trim();
        if let Some(denom) = s.strip_prefix("1/") {
            let n: u64 = denom.trim().parse().ok()?;
            (n >= 1).then_some(SampleRate { denom: n })
        } else {
            match s.parse::<u64>().ok()? {
                0 => Some(SampleRate::OFF),
                1 => Some(SampleRate::ALL),
                _ => None,
            }
        }
    }

    /// The process-wide rate from `VC_TRACE_SAMPLE`, read once; unset or
    /// unparseable values mean [`SampleRate::OFF`] so an uninstrumented
    /// environment never pays for (or emits) causal events.
    pub fn from_env() -> SampleRate {
        static RATE: OnceLock<SampleRate> = OnceLock::new();
        *RATE.get_or_init(|| {
            std::env::var("VC_TRACE_SAMPLE")
                .ok()
                .and_then(|v| SampleRate::parse(&v))
                .unwrap_or(SampleRate::OFF)
        })
    }
}

impl std::fmt::Display for SampleRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.denom {
            0 => write!(f, "0"),
            1 => write!(f, "1"),
            n => write!(f, "1/{n}"),
        }
    }
}

/// The deterministic sampling decision: seeded from the scenario seed so
/// the set of traced messages is reproducible and shard-count-invariant.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    seed: u64,
    rate: SampleRate,
}

impl Sampler {
    /// A sampler with an explicit rate (in-process sweeps, tests).
    pub fn new(seed: u64, rate: SampleRate) -> Sampler {
        Sampler { seed, rate }
    }

    /// A sampler at the process-wide `VC_TRACE_SAMPLE` rate.
    pub fn from_env(seed: u64) -> Sampler {
        Sampler::new(seed, SampleRate::from_env())
    }

    /// The configured rate.
    pub fn rate(&self) -> SampleRate {
        self.rate
    }

    /// `true` when this sampler never selects anything.
    pub fn is_off(&self) -> bool {
        self.rate.is_off()
    }

    /// Decides whether the message with canonical id `key` is traced, and
    /// if so returns its [`TraceId`]. Pure function of `(seed, rate, key)`.
    pub fn decide(&self, key: u64) -> Option<TraceId> {
        if self.rate.denom == 0 {
            return None;
        }
        let h = mix64(self.seed.rotate_left(32) ^ mix64(key));
        // Trace ids keep the top 52 bits (low bit forced nonzero) so they
        // are exactly representable as f64 and survive the JSON writer's
        // number type byte-for-byte.
        h.is_multiple_of(self.rate.denom).then_some(TraceId((h >> 12) | 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_parsing() {
        assert_eq!(SampleRate::parse("0"), Some(SampleRate::OFF));
        assert_eq!(SampleRate::parse("1"), Some(SampleRate::ALL));
        assert_eq!(SampleRate::parse("1/10"), Some(SampleRate::one_in(10)));
        assert_eq!(SampleRate::parse(" 1/100 "), Some(SampleRate::one_in(100)));
        assert_eq!(SampleRate::parse("1/0"), None);
        assert_eq!(SampleRate::parse("2"), None);
        assert_eq!(SampleRate::parse("1/x"), None);
        assert_eq!(SampleRate::parse(""), None);
        assert_eq!(SampleRate::one_in(0), SampleRate::OFF);
        assert_eq!(SampleRate::one_in(1), SampleRate::ALL);
    }

    #[test]
    fn rate_display_round_trips() {
        for rate in [SampleRate::OFF, SampleRate::ALL, SampleRate::one_in(100)] {
            assert_eq!(SampleRate::parse(&rate.to_string()), Some(rate));
        }
    }

    #[test]
    fn off_samples_nothing_all_samples_everything() {
        let off = Sampler::new(42, SampleRate::OFF);
        let all = Sampler::new(42, SampleRate::ALL);
        for key in 0..200 {
            assert_eq!(off.decide(key), None);
            assert!(all.decide(key).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = Sampler::new(7, SampleRate::one_in(4));
        let b = Sampler::new(7, SampleRate::one_in(4));
        let c = Sampler::new(8, SampleRate::one_in(4));
        let picks_a: Vec<_> = (0..512).filter_map(|k| a.decide(k).map(|t| (k, t))).collect();
        let picks_b: Vec<_> = (0..512).filter_map(|k| b.decide(k).map(|t| (k, t))).collect();
        let picks_c: Vec<_> = (0..512).filter_map(|k| c.decide(k).map(|t| (k, t))).collect();
        assert_eq!(picks_a, picks_b, "same seed must pick the same messages");
        assert_ne!(picks_a, picks_c, "different seeds must pick differently");
    }

    #[test]
    fn one_in_n_hits_roughly_one_in_n() {
        let s = Sampler::new(3, SampleRate::one_in(10));
        let hits = (0..10_000).filter(|&k| s.decide(k).is_some()).count();
        assert!((700..1300).contains(&hits), "1/10 sampling hit {hits}/10000");
    }

    #[test]
    fn trace_ids_are_distinct_per_key() {
        let s = Sampler::new(5, SampleRate::ALL);
        let mut ids: Vec<u64> = (0..4096).map(|k| s.decide(k).unwrap().as_u64()).collect();
        assert!(ids.iter().all(|&id| id < (1 << 53)), "trace ids must be f64-exact");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4096, "trace ids collided");
    }
}
