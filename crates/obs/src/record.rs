//! The structured event recorder: typed events, sim-time spans, ring-buffer
//! mode, and deterministic JSONL export.
//!
//! Every event carries the *simulated* clock, never the wall clock, so a
//! trace written from a seeded run is byte-for-byte reproducible — the CI
//! determinism gate diffs two same-seed traces directly.

use std::collections::VecDeque;
use std::io::{self, Write};

use vc_sim::probe::{Probe, Value};
use vc_sim::time::{SimDuration, SimTime};
use vc_testkit::json::Json;

use crate::metrics::{MetricsHub, TimeSeries};

/// Identifies one span within a [`Recorder`]; returned by
/// [`Recorder::span_begin`] and consumed by [`Recorder::span_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw numeric id (stable within one recorder's lifetime).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Whether a span-linked event marks the start or the finish of the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span just opened.
    Begin,
    /// The span just closed; the event carries the elapsed sim-time.
    End,
}

/// One structured instrumentation record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time the event occurred at.
    pub at: SimTime,
    /// Emitting subsystem (`"sim"`, `"net"`, `"auth"`, `"cloud"`, ...).
    pub component: &'static str,
    /// Event name within the component (`"radio.rx"`, `"handshake"`, ...).
    pub kind: &'static str,
    /// Span linkage, when this event opens or closes a span.
    pub span: Option<(SpanId, SpanPhase)>,
    /// Elapsed sim-time, present on span-end events.
    pub elapsed: Option<SimDuration>,
    /// Short list of typed key/value details.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Renders this event as one compact, insertion-ordered JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("at_us".into(), Json::from(self.at.as_micros())),
            ("component".into(), Json::from(self.component)),
            ("kind".into(), Json::from(self.kind)),
        ];
        if let Some((id, phase)) = self.span {
            pairs.push(("span".into(), Json::from(id.as_u64())));
            let phase = match phase {
                SpanPhase::Begin => "begin",
                SpanPhase::End => "end",
            };
            pairs.push(("phase".into(), Json::from(phase)));
        }
        if let Some(elapsed) = self.elapsed {
            pairs.push(("elapsed_us".into(), Json::from(elapsed.as_micros())));
        }
        if !self.fields.is_empty() {
            let fields =
                self.fields.iter().map(|(k, v)| ((*k).to_owned(), value_to_json(v))).collect();
            pairs.push(("fields".into(), Json::Obj(fields)));
        }
        Json::Obj(pairs)
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::U64(n) => Json::from(*n),
        Value::I64(n) => Json::from(*n),
        Value::F64(n) => Json::from(*n),
        Value::Bool(b) => Json::from(*b),
        Value::Str(s) => Json::from(s.as_str()),
    }
}

struct OpenSpan {
    id: SpanId,
    component: &'static str,
    kind: &'static str,
    begin: SimTime,
}

/// A structured event log with sim-time spans and an embedded
/// [`MetricsHub`].
///
/// Two storage modes: [`Recorder::new`] keeps every event (short
/// experiments), [`Recorder::ring`] keeps only the most recent `capacity`
/// events and counts the rest as [`Recorder::dropped`] (long runs). Either
/// way the embedded hub keeps aggregate counters/histograms over *all*
/// events, so metrics stay exact even when the ring has wrapped.
pub struct Recorder {
    events: VecDeque<Event>,
    cap: Option<usize>,
    dropped: u64,
    open: Vec<OpenSpan>,
    next_span: u64,
    hub: MetricsHub,
    timeseries: Option<TimeSeries>,
}

impl Recorder {
    /// An unbounded recorder that keeps every event.
    pub fn new() -> Recorder {
        Recorder {
            events: VecDeque::new(),
            cap: None,
            dropped: 0,
            open: Vec::new(),
            next_span: 0,
            hub: MetricsHub::new(),
            timeseries: None,
        }
    }

    /// A bounded recorder keeping only the most recent `capacity` events;
    /// older events are dropped (and counted) once the ring is full.
    pub fn ring(capacity: usize) -> Recorder {
        Recorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            cap: Some(capacity.max(1)),
            ..Recorder::new()
        }
    }

    /// Records a plain event and bumps the `component.kind` counter in the
    /// embedded hub.
    pub fn event(
        &mut self,
        at: SimTime,
        component: &'static str,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.push(Event { at, component, kind, span: None, elapsed: None, fields });
    }

    /// Opens a span: emits a `begin` event now and returns the id to close
    /// it with. Spans may nest and may close out of order.
    pub fn span_begin(
        &mut self,
        at: SimTime,
        component: &'static str,
        kind: &'static str,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.push(OpenSpan { id, component, kind, begin: at });
        self.push(Event {
            at,
            component,
            kind,
            span: Some((id, SpanPhase::Begin)),
            elapsed: None,
            fields: Vec::new(),
        });
        id
    }

    /// Closes a span: emits an `end` event carrying the elapsed sim-time and
    /// records the elapsed microseconds into the hub histogram
    /// `component.kind.us`. Returns `None` (and records nothing) if the id
    /// is unknown or already closed.
    pub fn span_end(&mut self, at: SimTime, id: SpanId) -> Option<SimDuration> {
        let idx = self.open.iter().rposition(|s| s.id == id)?;
        let span = self.open.swap_remove(idx);
        let elapsed = at.saturating_since(span.begin);
        let name = format!("{}.{}.us", span.component, span.kind);
        self.hub.observe(&name, elapsed.as_micros() as f64);
        self.push(Event {
            at,
            component: span.component,
            kind: span.kind,
            span: Some((id, SpanPhase::End)),
            elapsed: Some(elapsed),
            fields: Vec::new(),
        });
        Some(elapsed)
    }

    fn push(&mut self, event: Event) {
        self.hub.counter_add(&format!("{}.{}", event.component, event.kind), 1);
        if let Some(cap) = self.cap {
            if self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded by ring-buffer mode (always 0 when unbounded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans opened but not yet closed.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// The embedded metrics registry (read access).
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// The embedded metrics registry (write access, for caller-owned
    /// gauges and histograms alongside the automatic event counters).
    pub fn hub_mut(&mut self) -> &mut MetricsHub {
        &mut self.hub
    }

    /// Enables the windowed time-series mode: every
    /// [`Recorder::timeseries_tick`] records the hub's delta since the
    /// previous tick into a ring keeping the most recent `capacity` ticks.
    pub fn enable_timeseries(&mut self, capacity: usize) {
        self.timeseries = Some(TimeSeries::new(capacity));
    }

    /// The time series, when [`Recorder::enable_timeseries`] was called.
    pub fn timeseries(&self) -> Option<&TimeSeries> {
        self.timeseries.as_ref()
    }

    /// Closes one time-series tick at sim-time `at`. A no-op unless the
    /// time-series mode is enabled, so instrumented loops can call it
    /// unconditionally.
    pub fn timeseries_tick(&mut self, at: SimTime) {
        if let Some(ts) = self.timeseries.as_mut() {
            ts.tick(at.as_micros(), &self.hub);
        }
    }

    /// Merges a shard-local [`EventBuf`] into the log, preserving the
    /// buffer's order. Call in canonical shard order on the coordinator —
    /// the merged stream is then identical at every shard count (the
    /// PR 6 contract; see docs/PARALLELISM.md).
    pub fn absorb(&mut self, buf: EventBuf) {
        for event in buf.events {
            self.push(event);
        }
    }

    /// Writes the retained events as JSON Lines: one compact object per
    /// line, insertion-ordered keys, trailing newline per line. Output is
    /// deterministic for a deterministic run.
    ///
    /// Ring-mode recorders append a `obs`/`trace.end` trailer carrying the
    /// retained and dropped counts, so a consumer can tell a truncated
    /// window from a complete log instead of silently reporting partial
    /// counts. Unbounded recorders (which never drop) emit no trailer and
    /// their output is byte-identical to earlier releases.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for event in &self.events {
            out.write_all(event.to_json().to_string_compact().as_bytes())?;
            out.write_all(b"\n")?;
        }
        if self.cap.is_some() {
            let at = self.events.back().map_or(SimTime::ZERO, |e| e.at);
            let trailer = Event {
                at,
                component: "obs",
                kind: "trace.end",
                span: None,
                elapsed: None,
                fields: vec![
                    ("retained", Value::U64(self.events.len() as u64)),
                    ("dropped", Value::U64(self.dropped)),
                ],
            };
            out.write_all(trailer.to_json().to_string_compact().as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// A shard-local event buffer.
///
/// Worker threads cannot share the coordinator's [`Recorder`], so each
/// shard (or each work item) fills one of these — same `event` signature,
/// no locking — and the coordinator [`Recorder::absorb`]s the buffers in
/// canonical index order during the merge. Building the field vectors is
/// the expensive part of emission, so this moves that cost into the
/// parallel phase while keeping the merged stream byte-identical at every
/// shard count.
#[derive(Debug, Default)]
pub struct EventBuf {
    events: Vec<Event>,
}

impl EventBuf {
    /// An empty buffer (no allocation until the first event).
    pub fn new() -> EventBuf {
        EventBuf::default()
    }

    /// Buffers a plain event (counterpart of [`Recorder::event`]).
    pub fn event(
        &mut self,
        at: SimTime,
        component: &'static str,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.events.push(Event { at, component, kind, span: None, elapsed: None, fields });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl crate::mem::MemSize for Event {
    fn mem_bytes(&self) -> u64 {
        (self.fields.capacity() * std::mem::size_of::<(&'static str, Value)>()) as u64
            + self
                .fields
                .iter()
                .map(|(_, v)| match v {
                    Value::Str(s) => s.capacity() as u64,
                    _ => 0,
                })
                .sum::<u64>()
    }
}

impl crate::mem::MemSize for Recorder {
    /// Deep heap bytes of the event ring (by capacity, plus per-event
    /// field storage), open-span bookkeeping, the embedded hub, and the
    /// time series when enabled — the `mem.obs.bytes` gauge.
    fn mem_bytes(&self) -> u64 {
        use crate::mem::MemSize;
        (self.events.capacity() * std::mem::size_of::<Event>()) as u64
            + self.events.iter().map(MemSize::mem_bytes).sum::<u64>()
            + (self.open.capacity() * std::mem::size_of::<OpenSpan>()) as u64
            + self.hub.mem_bytes()
            + self.timeseries.as_ref().map_or(0, MemSize::mem_bytes)
    }
}

impl Probe for Recorder {
    fn emit(
        &mut self,
        at: SimTime,
        component: &'static str,
        kind: &'static str,
        fields: &[(&'static str, Value)],
    ) {
        self.event(at, component, kind, fields.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn events_record_in_order_with_counters() {
        let mut rec = Recorder::new();
        rec.event(t(1), "sim", "tick", vec![("n", 1u64.into())]);
        rec.event(t(2), "sim", "tick", vec![("n", 2u64.into())]);
        rec.event(t(2), "net", "forward", Vec::new());
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.hub().counter("sim.tick"), 2);
        assert_eq!(rec.hub().counter("net.forward"), 1);
        assert_eq!(rec.hub().counter("absent"), 0);
    }

    #[test]
    fn spans_nest_and_close_out_of_order() {
        let mut rec = Recorder::new();
        let outer = rec.span_begin(t(0), "auth", "handshake");
        let inner = rec.span_begin(t(1), "auth", "verify");
        assert_eq!(rec.open_spans(), 2);
        // Close outer first: out-of-order closing must still resolve both.
        assert_eq!(rec.span_end(t(4), outer), Some(SimDuration::from_millis(4)));
        assert_eq!(rec.span_end(t(5), inner), Some(SimDuration::from_millis(4)));
        assert_eq!(rec.open_spans(), 0);
        // Double close is rejected.
        assert_eq!(rec.span_end(t(6), inner), None);
        // Span elapsed landed in the hub histogram.
        let hist = rec.hub().histogram("auth.handshake.us").unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), Some(4000.0));
        // Events: 2 begins + 2 ends, begins before their ends.
        let phases: Vec<_> = rec.events().filter_map(|e| e.span).collect();
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0], (outer, SpanPhase::Begin));
        assert_eq!(phases[2], (outer, SpanPhase::End));
    }

    #[test]
    fn ring_mode_drops_oldest_but_keeps_exact_counters() {
        let mut rec = Recorder::ring(2);
        for i in 0..5u64 {
            rec.event(t(i), "sim", "tick", vec![("i", i.into())]);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let first = rec.events().next().unwrap();
        assert_eq!(first.fields[0].1, Value::U64(3));
        // The hub still saw all five events.
        assert_eq!(rec.hub().counter("sim.tick"), 5);
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let mut rec = Recorder::new();
        let s = rec.span_begin(t(0), "cloud", "place");
        rec.event(t(1), "cloud", "migrate", vec![("task", 7u64.into()), ("ok", true.into())]);
        rec.span_end(t(3), s);
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"at_us":0,"component":"cloud","kind":"place","span":0,"phase":"begin"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"at_us":1000,"component":"cloud","kind":"migrate","fields":{"task":7,"ok":true}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"at_us":3000,"component":"cloud","kind":"place","span":0,"phase":"end","elapsed_us":3000}"#
        );
    }

    #[test]
    fn absorbed_shard_buffers_match_direct_emission() {
        // Emitting through per-shard buffers merged in canonical order must
        // produce the same log (bytes, counters) as direct emission.
        let mut direct = Recorder::new();
        direct.event(t(1), "sim", "radio.tx", vec![("bytes", 64u64.into())]);
        direct.event(t(1), "sim", "radio.rx", vec![("latency_us", 250u64.into())]);
        direct.event(t(2), "net", "routing.forward", Vec::new());

        let mut sharded = Recorder::new();
        let mut shard_a = EventBuf::new();
        shard_a.event(t(1), "sim", "radio.tx", vec![("bytes", 64u64.into())]);
        shard_a.event(t(1), "sim", "radio.rx", vec![("latency_us", 250u64.into())]);
        let mut shard_b = EventBuf::new();
        shard_b.event(t(2), "net", "routing.forward", Vec::new());
        assert_eq!(shard_a.len(), 2);
        assert!(!shard_a.is_empty());
        sharded.absorb(shard_a);
        sharded.absorb(shard_b);

        let jsonl = |rec: &Recorder| {
            let mut out = Vec::new();
            rec.write_jsonl(&mut out).unwrap();
            out
        };
        assert_eq!(jsonl(&direct), jsonl(&sharded));
        assert_eq!(sharded.hub().counter("sim.radio.tx"), 1);
        assert_eq!(sharded.hub().counter("net.routing.forward"), 1);
    }

    #[test]
    fn absorb_respects_ring_capacity() {
        let mut rec = Recorder::ring(2);
        let mut buf = EventBuf::new();
        for i in 0..5u64 {
            buf.event(t(i), "sim", "tick", vec![("i", i.into())]);
        }
        rec.absorb(buf);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.hub().counter("sim.tick"), 5);
    }

    #[test]
    fn ring_jsonl_carries_a_drop_trailer_and_unbounded_does_not() {
        let mut ring = Recorder::ring(2);
        for i in 0..3u64 {
            ring.event(t(i), "sim", "tick", vec![("i", i.into())]);
        }
        let mut out = Vec::new();
        ring.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let last = text.lines().last().unwrap();
        assert_eq!(
            last,
            r#"{"at_us":2000,"component":"obs","kind":"trace.end","fields":{"retained":2,"dropped":1}}"#
        );
        // Unbounded recorders keep the pre-trailer byte format.
        let mut plain = Recorder::new();
        plain.event(t(0), "sim", "tick", Vec::new());
        let mut out = Vec::new();
        plain.write_jsonl(&mut out).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("trace.end"));
    }

    #[test]
    fn timeseries_tick_is_noop_until_enabled() {
        let mut rec = Recorder::new();
        rec.timeseries_tick(t(1));
        assert!(rec.timeseries().is_none());
        rec.enable_timeseries(16);
        rec.event(t(2), "sim", "tick", Vec::new());
        rec.timeseries_tick(t(2));
        rec.event(t(3), "net", "routing.deliver", Vec::new());
        rec.timeseries_tick(t(3));
        let ts = rec.timeseries().unwrap();
        assert_eq!(ts.len(), 2);
        let samples: Vec<_> = ts.samples().collect();
        assert_eq!(samples[0].diff.counters.get("sim.tick"), Some(&1));
        assert_eq!(samples[1].diff.counters.get("net.routing.deliver"), Some(&1));
        assert!(!samples[1].diff.counters.contains_key("sim.tick"));
    }

    /// Extracts the `trace.end` trailer's `(retained, dropped)` from a
    /// serialized ring trace.
    fn trailer_counts(rec: &Recorder) -> Option<(u64, u64)> {
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let last = text.lines().last()?;
        if !last.contains("trace.end") {
            return None;
        }
        let doc = Json::parse(last).unwrap();
        Some((
            doc["fields"]["retained"].as_f64().unwrap() as u64,
            doc["fields"]["dropped"].as_f64().unwrap() as u64,
        ))
    }

    #[test]
    fn empty_ring_trace_is_trailer_only() {
        // Zero events: the ring trailer must still appear, with both
        // counts zero, so a consumer can tell "empty" from "not a ring".
        let rec = Recorder::ring(4);
        assert_eq!(trailer_counts(&rec), Some((0, 0)));
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }

    #[test]
    fn single_event_ring_trace_retains_one_drops_zero() {
        let mut rec = Recorder::ring(4);
        rec.event(t(1), "sim", "tick", Vec::new());
        assert_eq!(trailer_counts(&rec), Some((1, 0)));
    }

    #[test]
    fn ring_wrap_exactly_at_capacity_drops_nothing() {
        // Filling the ring to exactly its capacity must not count a drop;
        // one event past capacity must count exactly one.
        let mut rec = Recorder::ring(3);
        for i in 0..3u64 {
            rec.event(t(i), "sim", "tick", Vec::new());
        }
        assert_eq!((rec.len(), rec.dropped()), (3, 0));
        assert_eq!(trailer_counts(&rec), Some((3, 0)));
        rec.event(t(3), "sim", "tick", Vec::new());
        assert_eq!((rec.len(), rec.dropped()), (3, 1));
        assert_eq!(trailer_counts(&rec), Some((3, 1)));
        // The oldest event rolled off; the window starts at t=1.
        assert_eq!(rec.events().next().unwrap().at, t(1));
    }

    #[test]
    fn recorder_mem_bytes_tracks_growth_and_is_deterministic() {
        use crate::mem::MemSize;
        let build = |events: u64| {
            let mut rec = Recorder::new();
            for i in 0..events {
                rec.event(t(i), "sim", "tick", vec![("i", i.into())]);
            }
            rec
        };
        let small = build(4).mem_bytes();
        let big = build(4096).mem_bytes();
        assert!(small > 0 && big > small, "small {small}, big {big}");
        assert_eq!(build(100).mem_bytes(), build(100).mem_bytes());
    }

    #[test]
    fn recorder_acts_as_probe() {
        let mut rec = Recorder::new();
        {
            let probe: &mut dyn Probe = &mut rec;
            probe.emit(t(1), "sim", "radio.rx", &[("latency_us", Value::U64(250))]);
        }
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.hub().counter("sim.radio.rx"), 1);
    }
}
