//! Memory and allocation observability: a counting [`GlobalAlloc`] wrapper,
//! per-thread allocation counters, and the [`MemSize`] deep-footprint trait.
//!
//! The paper frames vehicular clouds as pools of *resource-constrained*
//! nodes: CPU time is only half the budget, heap footprint is the other.
//! This module is the measurement substrate for that second axis:
//!
//! * [`CountingAlloc`] — a `#[global_allocator]` wrapper over
//!   [`std::alloc::System`] maintaining global live/peak bytes and
//!   alloc/dealloc counts plus per-thread cumulative counters. Binaries opt
//!   in with [`counting_allocator!`]; the libraries never install it, so
//!   library consumers keep whatever allocator they chose.
//! * [`AllocScope`] — RAII delta capture over the current thread's
//!   counters, used by the steady-state zero-alloc assertions and by
//!   `vc_obs::profile` to report `allocs`/`bytes` per frame.
//! * [`MemSize`] — deterministic *deep heap bytes* for std containers and
//!   the workspace's big resident structures (`Fleet` slabs, the CSR
//!   neighbor table, recorder rings, metrics hub). Deep-bytes gauges are
//!   derived from capacities and lengths only — never from allocator
//!   state — so they are bitwise shard-count-invariant and feed the
//!   deterministic time-series (`mem.fleet.bytes` and friends).
//!
//! Reporting is gated by `VC_MEM` (unset/`1` = on, `0` = off) via
//! [`enabled`]. The gate lives at the *reporting* layer only: the
//! allocator itself always counts (a handful of relaxed atomics), because
//! reading the environment from inside `alloc` could recurse. With
//! `VC_MEM=0` no gauge is ever written and no experiment output changes —
//! the inertness twin of `VC_TRACE_SAMPLE=0`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

/// Process-wide live heap bytes (allocated minus freed).
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`], monotone until [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Process-wide allocation count (allocs + growing reallocs).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Process-wide deallocation count.
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Cumulative allocations performed by this thread.
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Cumulative bytes allocated by this thread.
    static T_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper over the system allocator. Install per binary with
/// [`counting_allocator!`]; when not installed, every counter stays zero
/// and all reporting degrades to zeros.
///
/// The counting path is allocation-free and never reads the environment:
/// four relaxed atomics plus two thread-local `Cell`s (skipped without
/// panicking during thread teardown).
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: u64) {
        let live = LIVE.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(live, Relaxed);
        ALLOCS.fetch_add(1, Relaxed);
        // `try_with`: TLS may already be torn down while the runtime frees
        // thread state; the global counters still see those events.
        let _ = T_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = T_BYTES.try_with(|c| c.set(c.get() + size));
    }

    #[inline]
    fn on_dealloc(size: u64) {
        LIVE.fetch_sub(size, Relaxed);
        DEALLOCS.fetch_add(1, Relaxed);
    }
}

#[allow(unsafe_code)] // the one place the crate touches raw allocation
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size() as u64);
            Self::on_alloc(new_size as u64);
        }
        p
    }
}

/// Installs [`CountingAlloc`] as the binary's `#[global_allocator]`.
///
/// ```ignore
/// vc_obs::counting_allocator!();
/// ```
#[macro_export]
macro_rules! counting_allocator {
    () => {
        #[global_allocator]
        static VC_COUNTING_ALLOC: $crate::mem::CountingAlloc = $crate::mem::CountingAlloc;
    };
}

/// A snapshot of the process-wide allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Live heap bytes right now (allocated minus freed).
    pub live_bytes: u64,
    /// Peak live bytes since process start or the last [`reset_peak`].
    pub peak_bytes: u64,
    /// Total allocations (growing reallocs count as a fresh allocation).
    pub allocs: u64,
    /// Total deallocations.
    pub deallocs: u64,
}

/// Reads the process-wide counters. All zeros unless the binary installed
/// [`counting_allocator!`].
pub fn stats() -> MemStats {
    MemStats {
        live_bytes: LIVE.load(Relaxed),
        peak_bytes: PEAK.load(Relaxed),
        allocs: ALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
    }
}

/// Resets the peak-bytes high-water mark to the current live bytes, so a
/// measurement phase (e.g. one E18 row) sees only its own peak.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Relaxed), Relaxed);
}

/// `(allocations, bytes)` performed by the *current thread* so far.
/// Monotone counters: subtract two readings for a scoped delta (that is
/// exactly what [`AllocScope`] does).
pub fn thread_counters() -> (u64, u64) {
    let allocs = T_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = T_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

/// Whether memory *reporting* is enabled: `VC_MEM` unset or any value but
/// `0`. Gates only the reporting layer (gauges, tables) — the allocator
/// itself always counts.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("VC_MEM").map(|v| v != "0").unwrap_or(true))
}

/// Registers the counting allocator as `vc_testkit::bench`'s allocation
/// probe, so bench suites report allocs/iter and alloc bytes/iter columns.
/// Call once from a bench binary's `main` (after [`counting_allocator!`]).
pub fn register_bench_probe() {
    vc_testkit::bench::set_alloc_probe(thread_counters);
}

/// The allocation delta observed by an [`AllocScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Allocations performed by this thread inside the scope.
    pub allocs: u64,
    /// Bytes allocated by this thread inside the scope.
    pub bytes: u64,
}

/// RAII capture of the current thread's allocation activity. Start one,
/// run the code under measurement, and call [`AllocScope::finish`]:
///
/// ```
/// let scope = vc_obs::mem::AllocScope::start();
/// let v: Vec<u8> = Vec::with_capacity(64);
/// drop(v);
/// let delta = scope.finish();
/// // Without the counting allocator installed the delta is zero; with it,
/// // the Vec above is visible.
/// assert!(delta.allocs == 0 || delta.bytes >= 64);
/// ```
#[derive(Debug)]
pub struct AllocScope {
    start_allocs: u64,
    start_bytes: u64,
}

impl AllocScope {
    /// Snapshots the current thread's counters.
    pub fn start() -> AllocScope {
        let (start_allocs, start_bytes) = thread_counters();
        AllocScope { start_allocs, start_bytes }
    }

    /// Returns the allocation activity since [`AllocScope::start`].
    pub fn finish(self) -> AllocDelta {
        let (allocs, bytes) = thread_counters();
        AllocDelta { allocs: allocs - self.start_allocs, bytes: bytes - self.start_bytes }
    }
}

/// Deterministic deep heap bytes: everything a value owns on the heap,
/// excluding `size_of::<Self>()` itself (the inline part is the owner's
/// problem). Derived purely from lengths and capacities, so two
/// structurally identical values report identical bytes regardless of
/// shard count, thread, or allocator — which is what lets the `mem.*`
/// gauges ride in the byte-compared deterministic time-series.
///
/// Node-based containers (`BTreeMap`, `HashMap`) use documented
/// approximations of their allocation layout; the goal is a stable,
/// comparable footprint signal, not malloc-exact accounting.
pub trait MemSize {
    /// Deep heap bytes owned by `self`.
    fn mem_bytes(&self) -> u64;
}

macro_rules! inline_only {
    ($($t:ty),* $(,)?) => {
        $(impl MemSize for $t {
            fn mem_bytes(&self) -> u64 {
                0
            }
        })*
    };
}

inline_only!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl MemSize for String {
    fn mem_bytes(&self) -> u64 {
        self.capacity() as u64
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_bytes(&self) -> u64 {
        (self.capacity() * std::mem::size_of::<T>()) as u64
            + self.iter().map(MemSize::mem_bytes).sum::<u64>()
    }
}

impl<T: MemSize> MemSize for std::collections::VecDeque<T> {
    fn mem_bytes(&self) -> u64 {
        (self.capacity() * std::mem::size_of::<T>()) as u64
            + self.iter().map(MemSize::mem_bytes).sum::<u64>()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_bytes(&self) -> u64 {
        self.as_ref().map_or(0, MemSize::mem_bytes)
    }
}

impl<A: MemSize, B: MemSize> MemSize for (A, B) {
    fn mem_bytes(&self) -> u64 {
        self.0.mem_bytes() + self.1.mem_bytes()
    }
}

/// B-tree nodes hold up to 11 entries and average ~3/4 full; model the
/// slack plus one pointer of per-node overhead per entry.
const BTREE_SLACK_NUM: u64 = 4;
const BTREE_SLACK_DEN: u64 = 3;

impl<K: MemSize, V: MemSize> MemSize for std::collections::BTreeMap<K, V> {
    fn mem_bytes(&self) -> u64 {
        let entry = (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 8) as u64;
        let nodes = self.len() as u64 * entry * BTREE_SLACK_NUM / BTREE_SLACK_DEN;
        nodes + self.iter().map(|(k, v)| k.mem_bytes() + v.mem_bytes()).sum::<u64>()
    }
}

impl<K: MemSize, V: MemSize, S> MemSize for std::collections::HashMap<K, V, S> {
    fn mem_bytes(&self) -> u64 {
        // SwissTable: one (K, V) slot plus one control byte per slot of
        // capacity. Iteration order is random but the sum is not.
        let table = self.capacity() as u64 * (std::mem::size_of::<(K, V)>() as u64 + 1);
        table + self.iter().map(|(k, v)| k.mem_bytes() + v.mem_bytes()).sum::<u64>()
    }
}

impl<T: MemSize, S> MemSize for std::collections::HashSet<T, S> {
    fn mem_bytes(&self) -> u64 {
        let table = self.capacity() as u64 * (std::mem::size_of::<T>() as u64 + 1);
        table + self.iter().map(MemSize::mem_bytes).sum::<u64>()
    }
}

impl MemSize for vc_sim::mobility::Fleet {
    fn mem_bytes(&self) -> u64 {
        self.heap_bytes()
    }
}

impl MemSize for vc_sim::roadnet::RoadNetwork {
    fn mem_bytes(&self) -> u64 {
        self.heap_bytes()
    }
}

impl MemSize for vc_sim::radio::NeighborTable {
    fn mem_bytes(&self) -> u64 {
        self.heap_bytes()
    }
}

impl MemSize for vc_sim::geom::SpatialGrid {
    fn mem_bytes(&self) -> u64 {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.mem_bytes(), 16 * 8);
    }

    #[test]
    fn nested_containers_recurse() {
        let v: Vec<Vec<u32>> = vec![Vec::with_capacity(4), Vec::with_capacity(2)];
        let inline = v.capacity() * std::mem::size_of::<Vec<u32>>();
        assert_eq!(v.mem_bytes(), (inline + 4 * 4 + 2 * 4) as u64);
    }

    #[test]
    fn string_and_scalars() {
        assert_eq!(5u64.mem_bytes(), 0);
        let s = String::with_capacity(32);
        assert_eq!(s.mem_bytes(), 32);
    }

    #[test]
    fn identical_structures_report_identical_bytes() {
        let build = || {
            let mut m = std::collections::HashMap::new();
            for i in 0..100u64 {
                m.insert(i, vec![0u8; 10]);
            }
            m
        };
        assert_eq!(build().mem_bytes(), build().mem_bytes());
    }

    #[test]
    fn alloc_scope_is_monotone_and_zero_without_allocator() {
        // The obs test binary does not install the counting allocator, so
        // deltas are zero — which is itself the contract under test: the
        // reporting layer degrades to zeros, never garbage.
        let scope = AllocScope::start();
        let v: Vec<u8> = Vec::with_capacity(1024);
        drop(v);
        let delta = scope.finish();
        assert_eq!(delta, AllocDelta { allocs: 0, bytes: 0 });
        let s = stats();
        assert_eq!((s.live_bytes, s.allocs), (0, 0));
    }

    #[test]
    fn enabled_defaults_on() {
        // CI never sets VC_MEM for unit tests; the default must be on.
        if std::env::var("VC_MEM").is_err() {
            assert!(enabled());
        }
    }
}
