//! # vc-obs — structured tracing and metrics for the vcloud workspace
//!
//! The paper's central claim is that vehicular clouds need *real-time
//! trustworthiness assessment* and auditable security decisions; this crate
//! is the measurement substrate that makes those assessments possible. It
//! provides two cooperating facilities:
//!
//! * [`Recorder`] — a zero-dependency structured event log. Instrumented
//!   code emits typed [`Event`]s (`at` sim-time, `component`, `kind`,
//!   fields) and sim-time *spans* (begin/end pairs with elapsed time). The
//!   recorder can run unbounded (short experiments) or as a bounded ring
//!   buffer (long runs), and exports deterministic JSONL built on
//!   `vc-testkit`'s insertion-ordered JSON writer.
//! * [`MetricsHub`] — a registry of counters, gauges, and fixed-bucket
//!   log-scale [`Histogram`]s under hierarchical `component.metric` names,
//!   with a snapshot-diff API for measuring deltas over a phase of a run.
//! * [`profile::Profiler`] — the wall-clock half: scoped RAII frames
//!   aggregated into a call tree with `profile.json` and collapsed-stack
//!   (flamegraph) exports. Traces stay sim-time-only and byte-reproducible;
//!   the profiler is where real nanoseconds are accounted.
//! * [`causal`] — per-message causal tracing: a deterministic, seeded
//!   [`Sampler`] selects messages (`VC_TRACE_SAMPLE`), each selected
//!   message carries a [`TraceId`] across hops, and the resulting
//!   `causal.*` event chain reconstructs the full admission → relay →
//!   delivery path (`vcstat --causal`).
//! * [`mem`] — the heap half of the budget: a counting
//!   `#[global_allocator]` wrapper (binaries opt in via
//!   `counting_allocator!`), per-frame alloc accounting through the
//!   profiler, and the [`MemSize`] deep-footprint trait feeding
//!   deterministic `mem.*` gauges (`VC_MEM=0` turns all reporting off,
//!   provably inert like `VC_TRACE_SAMPLE=0`).
//! * [`TimeSeries`] — the windowed per-tick mode of [`MetricsHub`]:
//!   snapshot diffs pushed into a fixed-capacity ring, exported as JSONL
//!   (`experiments --timeseries`, `vcstat --timeline`).
//!
//! Instrumentation hooks throughout the workspace take
//! `Option<&mut Recorder>`: passing `None` reduces every hook to a branch,
//! so uninstrumented runs pay near zero. Code in `vc-sim` (which cannot
//! depend on this crate) emits through the [`vc_sim::probe::Probe`] trait,
//! which [`Recorder`] implements.
//!
//! ```
//! use vc_obs::Recorder;
//! use vc_sim::time::SimTime;
//!
//! let mut rec = Recorder::new();
//! let span = rec.span_begin(SimTime::ZERO, "auth", "handshake");
//! rec.event(SimTime::from_millis(2), "auth", "hello", vec![("bytes", 96u64.into())]);
//! rec.span_end(SimTime::from_millis(5), span);
//! let mut out = Vec::new();
//! rec.write_jsonl(&mut out).unwrap();
//! assert_eq!(out.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(), 3);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: `mem::CountingAlloc`'s `GlobalAlloc` impl is the
// one scoped `#[allow(unsafe_code)]` in the crate.
#![deny(unsafe_code)]

pub mod causal;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod record;

pub use causal::{SampleRate, Sampler, TraceId};
pub use mem::{AllocDelta, AllocScope, CountingAlloc, MemSize};
pub use metrics::{
    Histogram, MetricsHub, Quantiles, Snapshot, SnapshotDiff, TickSample, TimeSeries,
};
pub use record::{Event, EventBuf, Recorder, SpanId, SpanPhase};
pub use vc_sim::probe::{Probe, Value};

/// Reborrows an optional recorder so it can be passed down a call chain
/// without consuming the caller's `Option<&mut Recorder>`.
///
/// ```
/// use vc_obs::{reborrow, Recorder};
/// fn inner(rec: Option<&mut Recorder>) {}
/// fn outer(mut rec: Option<&mut Recorder>) {
///     inner(reborrow(&mut rec));
///     inner(rec); // still usable
/// }
/// ```
pub fn reborrow<'a>(rec: &'a mut Option<&mut Recorder>) -> Option<&'a mut Recorder> {
    rec.as_mut().map(|r| &mut **r)
}

/// Converts an optional recorder into the `Option<&mut dyn Probe>` that
/// `vc-sim`'s probed code paths accept.
pub fn as_probe<'a>(rec: &'a mut Option<&mut Recorder>) -> Option<&'a mut dyn Probe> {
    rec.as_mut().map(|r| &mut **r as &mut dyn Probe)
}
