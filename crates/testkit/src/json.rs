//! A small hand-rolled JSON value and writer.
//!
//! Replaces `serde_json` for the workspace's artifact files (experiment
//! tables, bench results). Deliberately minimal: build a [`Json`] tree,
//! render it with [`Json::to_string_pretty`]. Object key order is preserved
//! as inserted, so output is byte-for-byte deterministic — which is what the
//! CI determinism gate diffs.
//!
//! ```
//! use vc_testkit::json::Json;
//! let doc = Json::object([
//!     ("id", Json::from("E1")),
//!     ("rows", Json::array([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(doc["id"], "E1");
//! assert_eq!(doc["rows"][1], Json::from(2u64));
//! ```

use std::ops::Index;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with two-space indentation and a trailing
    /// newline-free final line (callers append their own newline).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like serde_json's
        // arbitrary-precision-off behaviour degrades to error.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

macro_rules! json_from_number {
    ($($ty:ty),+) => {$(
        impl From<$ty> for Json {
            fn from(n: $ty) -> Json {
                Json::Num(n as f64)
            }
        }
    )+};
}

json_from_number!(f64, f32, u64, u32, u16, u8, i64, i32, usize);

/// Object field access; yields `Json::Null` for missing keys.
impl Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

/// Array element access; yields `Json::Null` out of bounds.
impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, idx: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Json {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty_and_compact() {
        let doc = Json::object([
            ("id", Json::from("E1")),
            ("n", Json::from(3u64)),
            ("frac", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("rows", Json::array([Json::array([Json::from("a")]), Json::Arr(vec![])])),
            ("none", Json::Null),
        ]);
        let compact = doc.to_string_compact();
        assert_eq!(
            compact,
            r#"{"id":"E1","n":3,"frac":0.5,"ok":true,"rows":[["a"],[]],"none":null}"#
        );
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"id\": \"E1\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn indexing_and_equality() {
        let doc = Json::object([("xs", Json::array([Json::from(1u64), Json::from("two")]))]);
        assert_eq!(doc["xs"][1], "two");
        assert_eq!(doc["xs"][0].as_f64(), Some(1.0));
        assert_eq!(doc["missing"], Json::Null);
        assert_eq!(doc["xs"][9], Json::Null);
        assert_eq!(doc["xs"][1], "two".to_string());
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(Json::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Json::from(2.25).to_string_compact(), "2.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = Json::object([("z", Json::Null), ("a", Json::Null)]);
        let s = doc.to_string_compact();
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }
}
