//! A small hand-rolled JSON value and writer.
//!
//! Replaces `serde_json` for the workspace's artifact files (experiment
//! tables, bench results). Deliberately minimal: build a [`Json`] tree,
//! render it with [`Json::to_string_pretty`]. Object key order is preserved
//! as inserted, so output is byte-for-byte deterministic — which is what the
//! CI determinism gate diffs.
//!
//! ```
//! use vc_testkit::json::Json;
//! let doc = Json::object([
//!     ("id", Json::from("E1")),
//!     ("rows", Json::array([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(doc["id"], "E1");
//! assert_eq!(doc["rows"][1], Json::from(2u64));
//! ```

use std::ops::Index;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with two-space indentation and a trailing
    /// newline-free final line (callers append their own newline).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document (the inverse of [`Json::to_string_compact`]).
    ///
    /// Supports the full value grammar this writer emits: objects, arrays,
    /// strings with `\uXXXX` escapes, numbers, booleans, and `null`. Returns
    /// a human-readable error with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at byte {pos}", pos = *pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let mut code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // This writer never emits surrogates, but external
                        // writers encode non-BMP characters as \u pairs:
                        // combine a valid high+low pair, and map any lone
                        // surrogate to the replacement character rather
                        // than erroring.
                        if (0xD800..0xDC00).contains(&code) {
                            let low = bytes
                                .get(*pos + 1..*pos + 7)
                                .filter(|rest| rest.starts_with(b"\\u"))
                                .and_then(|rest| std::str::from_utf8(&rest[2..]).ok())
                                .and_then(|hex| u32::from_str_radix(hex, 16).ok())
                                .filter(|low| (0xDC00..0xE000).contains(low));
                            match low {
                                Some(low) => {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    *pos += 6;
                                }
                                None => code = 0xFFFD,
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (bytes is valid UTF-8 since
                // it came from &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a &str");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like serde_json's
        // arbitrary-precision-off behaviour degrades to error.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

macro_rules! json_from_number {
    ($($ty:ty),+) => {$(
        impl From<$ty> for Json {
            fn from(n: $ty) -> Json {
                Json::Num(n as f64)
            }
        }
    )+};
}

json_from_number!(f64, f32, u64, u32, u16, u8, i64, i32, usize);

/// Object field access; yields `Json::Null` for missing keys.
impl Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

/// Array element access; yields `Json::Null` out of bounds.
impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, idx: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Json {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty_and_compact() {
        let doc = Json::object([
            ("id", Json::from("E1")),
            ("n", Json::from(3u64)),
            ("frac", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("rows", Json::array([Json::array([Json::from("a")]), Json::Arr(vec![])])),
            ("none", Json::Null),
        ]);
        let compact = doc.to_string_compact();
        assert_eq!(
            compact,
            r#"{"id":"E1","n":3,"frac":0.5,"ok":true,"rows":[["a"],[]],"none":null}"#
        );
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"id\": \"E1\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn indexing_and_equality() {
        let doc = Json::object([("xs", Json::array([Json::from(1u64), Json::from("two")]))]);
        assert_eq!(doc["xs"][1], "two");
        assert_eq!(doc["xs"][0].as_f64(), Some(1.0));
        assert_eq!(doc["missing"], Json::Null);
        assert_eq!(doc["xs"][9], Json::Null);
        assert_eq!(doc["xs"][1], "two".to_string());
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(Json::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Json::from(2.25).to_string_compact(), "2.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::object([
            ("id", Json::from("E1")),
            ("n", Json::from(3u64)),
            ("frac", Json::from(-0.5)),
            ("ok", Json::from(true)),
            ("text", Json::from("a\"b\\c\nd\u{1}é")),
            ("rows", Json::array([Json::array([Json::from("a")]), Json::Arr(vec![])])),
            ("none", Json::Null),
            ("empty", Json::object::<&str>([])),
        ]);
        let compact = Json::parse(&doc.to_string_compact()).expect("compact parses");
        assert_eq!(compact, doc);
        let pretty = Json::parse(&doc.to_string_pretty()).expect("pretty parses");
        assert_eq!(pretty, doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = Json::object([("z", Json::Null), ("a", Json::Null)]);
        let s = doc.to_string_compact();
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn parse_decodes_escaped_strings() {
        let doc = Json::parse(r#""a\"b\\c\/d\b\f\n\r\t""#).expect("escapes parse");
        assert_eq!(doc.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
        // \uXXXX escapes, including a surrogate pair and a lone surrogate
        // (which decodes to the replacement character rather than erroring).
        assert_eq!(Json::parse("\"\\u00e9\\u0001\"").unwrap().as_str(), Some("\u{e9}\u{1}"));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("\u{1f600}"));
        assert_eq!(Json::parse(r#""\ud83d x""#).unwrap().as_str(), Some("\u{fffd} x"));
        assert!(Json::parse(r#""\uZZZZ""#).is_err(), "non-hex escape digits");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn parse_handles_nested_empty_containers() {
        let doc = Json::parse(r#"{"a":{},"b":[[],{}],"c":[{"d":[]}]}"#).expect("parses");
        assert_eq!(doc["a"], Json::object::<&str>([]));
        assert_eq!(doc["b"][0], Json::Arr(vec![]));
        assert_eq!(doc["b"][1], Json::object::<&str>([]));
        assert_eq!(doc["c"][0]["d"], Json::Arr(vec![]));
        assert_eq!(Json::parse(&doc.to_string_compact()).expect("round trip"), doc);
    }

    #[test]
    fn parse_handles_boundary_numbers() {
        // Integers survive up to the f64 exact-integer limit (2^53).
        let max_exact = (1i64 << 53) - 1;
        let doc = Json::parse(&max_exact.to_string()).expect("2^53-1 parses");
        assert_eq!(doc.as_f64(), Some(max_exact as f64));
        assert_eq!(doc.to_string_compact(), max_exact.to_string());
        let min_exact = -max_exact;
        assert_eq!(
            Json::parse(&min_exact.to_string()).unwrap().to_string_compact(),
            min_exact.to_string()
        );
        // i64::MAX is beyond 2^53: the value parses (as the nearest f64)
        // even though it can no longer render digit-identically.
        assert_eq!(
            Json::parse("9223372036854775807").unwrap().as_f64(),
            Some(9.223372036854776e18)
        );
        // f64 extremes and exponent forms.
        assert_eq!(Json::parse("1.7976931348623157e308").unwrap().as_f64(), Some(f64::MAX));
        assert_eq!(Json::parse("-1.7976931348623157E308").unwrap().as_f64(), Some(f64::MIN));
        assert_eq!(
            Json::parse("5e-324").unwrap().as_f64(),
            Some(f64::MIN_POSITIVE * 2f64.powi(-52))
        );
        assert_eq!(Json::parse("-0.0").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::parse("2.5e2").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("[1,2] x").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"a\"b").is_err());
        assert!(Json::parse("1,").is_err());
        // Trailing whitespace (including the newline a JSONL reader might
        // leave attached) is not garbage.
        assert!(Json::parse("{\"a\":1} \n").is_ok());
        assert!(Json::parse(" \t[1] ").is_ok());
    }
}
