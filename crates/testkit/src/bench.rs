//! Micro-benchmark harness: warmup, fixed iteration batches, median/p95
//! wall-clock, and a `BENCH_<suite>.json` artifact per suite.
//!
//! A bench target is a plain binary (`harness = false`) whose `main` builds a
//! [`Suite`], registers closures, and calls [`Suite::finish`]:
//!
//! ```no_run
//! use vc_testkit::bench::{black_box, Suite};
//!
//! fn main() {
//!     let mut suite = Suite::new("example");
//!     let data = vec![0u8; 1024];
//!     suite.bench_bytes("xor_fold/1KiB", data.len() as u64, || {
//!         black_box(data.iter().fold(0u8, |a, b| a ^ b))
//!     });
//!     suite.finish();
//! }
//! ```
//!
//! Flags (after `cargo bench -- `): `--quick` runs one iteration per bench
//! (the CI smoke mode), `--out DIR` writes `BENCH_<suite>.json` there.
//! `VC_BENCH_QUICK=1` and `VC_BENCH_OUT=DIR` are the env equivalents.
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored.

use crate::json::Json;
use std::sync::OnceLock;
use std::time::Instant;

pub use std::hint::black_box;

/// Optional allocation probe: returns the current thread's cumulative
/// `(allocations, bytes allocated)`. Bench binaries that install a
/// counting allocator register one (see `vc_obs::mem::register_bench_probe`)
/// and every benchmark then reports allocs/iter and alloc bytes/iter in
/// its `BENCH_*.json` entry. Without a probe those columns are simply
/// absent and artifacts keep their prior shape.
static ALLOC_PROBE: OnceLock<fn() -> (u64, u64)> = OnceLock::new();

/// Registers the allocation probe. First registration wins; later calls
/// are ignored so a suite and its harness cannot fight over it.
pub fn set_alloc_probe(probe: fn() -> (u64, u64)) {
    let _ = ALLOC_PROBE.set(probe);
}

fn alloc_probe() -> Option<(u64, u64)> {
    ALLOC_PROBE.get().map(|f| f())
}

/// Target wall-clock per measured batch.
const BATCH_TARGET_NS: u128 = 5_000_000;
/// Measured batches per benchmark (each yields one ns/iter sample).
const BATCHES: usize = 30;
/// Warmup budget before calibration counts.
const WARMUP_NS: u128 = 50_000_000;

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `"schnorr/sign"`.
    pub name: String,
    /// Median ns/iter across batches.
    pub median_ns: f64,
    /// 95th-percentile ns/iter across batches.
    pub p95_ns: f64,
    /// Fastest batch's ns/iter.
    pub min_ns: f64,
    /// Mean ns/iter across batches.
    pub mean_ns: f64,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Number of measured batches.
    pub batches: u64,
    /// Optional throughput denominator: bytes processed per iteration.
    pub bytes_per_iter: Option<u64>,
    /// Optional throughput denominator: elements processed per iteration.
    pub elems_per_iter: Option<u64>,
    /// Mean heap allocations per iteration (present only when an
    /// allocation probe is registered, see [`set_alloc_probe`]).
    pub allocs_per_iter: Option<f64>,
    /// Mean heap bytes allocated per iteration (same condition).
    pub alloc_bytes_per_iter: Option<f64>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("median_ns".to_string(), Json::from(self.median_ns)),
            ("p95_ns".to_string(), Json::from(self.p95_ns)),
            ("min_ns".to_string(), Json::from(self.min_ns)),
            ("mean_ns".to_string(), Json::from(self.mean_ns)),
            ("iters_per_batch".to_string(), Json::from(self.iters_per_batch)),
            ("batches".to_string(), Json::from(self.batches)),
        ];
        if let Some(b) = self.bytes_per_iter {
            pairs.push(("bytes_per_iter".to_string(), Json::from(b)));
            if self.median_ns > 0.0 {
                let mibps = b as f64 * 1e9 / self.median_ns / (1024.0 * 1024.0);
                pairs.push(("throughput_mib_s".to_string(), Json::from(mibps)));
            }
        }
        if let Some(e) = self.elems_per_iter {
            pairs.push(("elems_per_iter".to_string(), Json::from(e)));
        }
        if let Some(a) = self.allocs_per_iter {
            pairs.push(("allocs_per_iter".to_string(), Json::from(a)));
        }
        if let Some(b) = self.alloc_bytes_per_iter {
            pairs.push(("alloc_bytes_per_iter".to_string(), Json::from(b)));
        }
        Json::Obj(pairs)
    }
}

/// A named collection of benchmarks sharing one output artifact.
pub struct Suite {
    name: String,
    quick: bool,
    out_dir: Option<String>,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates a suite, reading `--quick` / `--out DIR` from the command
    /// line and `VC_BENCH_QUICK` / `VC_BENCH_OUT` from the environment.
    pub fn new(name: &str) -> Suite {
        let mut quick = std::env::var("VC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        let mut out_dir = std::env::var("VC_BENCH_OUT").ok();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--out" => {
                    i += 1;
                    out_dir = args.get(i).cloned();
                }
                // `cargo bench` appends `--bench`; test filters and other
                // harness flags are irrelevant here.
                _ => {}
            }
            i += 1;
        }
        println!(
            "bench suite '{name}' — {} mode",
            if quick { "quick (1 iteration, smoke only)" } else { "full" }
        );
        Suite { name: name.to_string(), quick, out_dir, results: Vec::new() }
    }

    /// Whether this run is in quick/smoke mode.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Measures `f`, recording ns/iter statistics under `name`.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &mut Suite {
        self.record(name, None, None, f)
    }

    /// Like [`Suite::bench`], annotating bytes processed per iteration.
    pub fn bench_bytes<T>(&mut self, name: &str, bytes: u64, f: impl FnMut() -> T) -> &mut Suite {
        self.record(name, Some(bytes), None, f)
    }

    /// Like [`Suite::bench`], annotating elements processed per iteration.
    pub fn bench_elems<T>(&mut self, name: &str, elems: u64, f: impl FnMut() -> T) -> &mut Suite {
        self.record(name, None, Some(elems), f)
    }

    fn record<T>(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        elems: Option<u64>,
        mut f: impl FnMut() -> T,
    ) -> &mut Suite {
        let result = if self.quick {
            // Smoke mode: prove the bench runs, once, and record that run.
            let before = alloc_probe();
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            let (allocs_per_iter, alloc_bytes_per_iter) = alloc_delta(before, 1);
            BenchResult {
                name: name.to_string(),
                median_ns: ns,
                p95_ns: ns,
                min_ns: ns,
                mean_ns: ns,
                iters_per_batch: 1,
                batches: 1,
                bytes_per_iter: bytes,
                elems_per_iter: elems,
                allocs_per_iter,
                alloc_bytes_per_iter,
            }
        } else {
            measure(name, &mut f, bytes, elems)
        };
        println!(
            "  {:<40} median {:>12}  p95 {:>12}  ({} iters x {} batches)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.p95_ns),
            result.iters_per_batch,
            result.batches,
        );
        self.results.push(result);
        self
    }

    /// Prints the footer and writes `BENCH_<suite>.json` when an output
    /// directory is configured.
    pub fn finish(self) {
        println!("bench suite '{}': {} benchmarks", self.name, self.results.len());
        let Some(dir) = self.out_dir else { return };
        std::fs::create_dir_all(&dir).expect("create bench output dir");
        let doc = Json::object([
            ("suite", Json::from(self.name.as_str())),
            ("mode", Json::from(if self.quick { "quick" } else { "full" })),
            ("results", Json::array(self.results.iter().map(|r| r.to_json()))),
        ]);
        let path = format!("{dir}/BENCH_{}.json", self.name);
        std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

fn measure<T>(
    name: &str,
    f: &mut impl FnMut() -> T,
    bytes: Option<u64>,
    elems: Option<u64>,
) -> BenchResult {
    // Warmup and calibration: run until the warmup budget is spent, tracking
    // the observed per-iteration cost.
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup_start.elapsed().as_nanos() < WARMUP_NS && warmup_iters < 1_000_000 {
        black_box(f());
        warmup_iters += 1;
    }
    let per_iter_ns = (warmup_start.elapsed().as_nanos() / u128::from(warmup_iters.max(1))).max(1);
    let iters_per_batch = (BATCH_TARGET_NS / per_iter_ns).clamp(1, 10_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(BATCHES);
    let before = alloc_probe();
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters_per_batch {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters_per_batch as f64);
    }
    let (allocs_per_iter, alloc_bytes_per_iter) =
        alloc_delta(before, BATCHES as u64 * iters_per_batch);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let percentile = |q: f64| {
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx]
    };
    BenchResult {
        name: name.to_string(),
        median_ns: percentile(0.5),
        p95_ns: percentile(0.95),
        min_ns: samples[0],
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        iters_per_batch,
        batches: samples.len() as u64,
        bytes_per_iter: bytes,
        elems_per_iter: elems,
        allocs_per_iter,
        alloc_bytes_per_iter,
    }
}

/// Converts a pre-measurement probe reading into mean per-iteration alloc
/// columns (`None` when no probe is registered).
fn alloc_delta(before: Option<(u64, u64)>, iters: u64) -> (Option<f64>, Option<f64>) {
    let (Some((a0, b0)), Some((a1, b1))) = (before, alloc_probe()) else {
        return (None, None);
    };
    let iters = iters.max(1) as f64;
    (Some((a1 - a0) as f64 / iters), Some((b1 - b0) as f64 / iters))
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_bench_once() {
        std::env::set_var("VC_BENCH_QUICK", "1");
        let mut suite = Suite::new("selftest");
        let mut calls = 0u32;
        suite.bench("counter", || {
            calls += 1;
            calls
        });
        assert!(suite.is_quick());
        assert_eq!(calls, 1);
        assert_eq!(suite.results.len(), 1);
        assert_eq!(suite.results[0].iters_per_batch, 1);
        std::env::remove_var("VC_BENCH_QUICK");
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }

    #[test]
    fn result_json_has_throughput_when_bytes_given() {
        let r = BenchResult {
            name: "x".into(),
            median_ns: 1000.0,
            p95_ns: 1200.0,
            min_ns: 900.0,
            mean_ns: 1010.0,
            iters_per_batch: 10,
            batches: 30,
            bytes_per_iter: Some(1024),
            elems_per_iter: None,
            allocs_per_iter: None,
            alloc_bytes_per_iter: None,
        };
        let j = r.to_json();
        assert_eq!(j["name"], "x");
        assert!(j["throughput_mib_s"].as_f64().unwrap() > 0.0);
        assert!(j["allocs_per_iter"].as_f64().is_none(), "absent without a probe");
    }

    #[test]
    fn result_json_carries_alloc_columns_when_probed() {
        let r = BenchResult {
            name: "x".into(),
            median_ns: 1000.0,
            p95_ns: 1200.0,
            min_ns: 900.0,
            mean_ns: 1010.0,
            iters_per_batch: 10,
            batches: 30,
            bytes_per_iter: None,
            elems_per_iter: None,
            allocs_per_iter: Some(3.0),
            alloc_bytes_per_iter: Some(96.5),
        };
        let j = r.to_json();
        assert_eq!(j["allocs_per_iter"].as_f64(), Some(3.0));
        assert_eq!(j["alloc_bytes_per_iter"].as_f64(), Some(96.5));
    }
}
