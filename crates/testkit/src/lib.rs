//! # vc-testkit — the in-tree test and benchmark harness
//!
//! Every crate in this workspace must build and test **offline**: the
//! dependability story of the reproduction (deterministic behaviour under
//! adversarial conditions) is only credible when the measurement harness
//! itself is reproducible, and a harness that depends on registry crates and
//! network availability is neither. `vc-testkit` therefore replaces the three
//! external tools the workspace used to lean on:
//!
//! - [`prop`] — a seeded property-testing harness (replaces `proptest`).
//!   Cases are generated from the simulator's own deterministic
//!   [`vc_sim::rng::SimRng`], so a failing case is reproducible from the
//!   printed seed alone. Failures are shrunk with a bounded greedy pass.
//! - [`bench`] — a micro-benchmark harness (replaces `criterion`): warmup,
//!   fixed iteration batches, median/p95 wall-clock, and a `BENCH_*.json`
//!   artifact per suite.
//! - [`json`] — a small hand-rolled JSON writer (replaces `serde_json`) used
//!   by the bench harness and the experiment table generator.
//!
//! See `docs/TESTKIT.md` at the repository root for a usage tour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The `prop!` doctest shows real call-site usage, which requires `#[test]`
// on each property (the macro forwards the attribute onto the generated fn).
#![allow(clippy::test_attr_in_doctest)]

pub mod bench;
pub mod json;
pub mod prop;
