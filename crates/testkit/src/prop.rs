//! Seeded property testing with bounded shrinking.
//!
//! A property is an ordinary `#[test]` written through the [`prop!`] macro:
//!
//! ```
//! use vc_testkit::prop::strategy::{any_u64, vec, any_u8};
//!
//! vc_testkit::prop! {
//!     #![cases(64)]
//!
//!     #[test]
//!     fn sum_is_commutative(a in any_u64(), b in any_u64()) {
//!         vc_testkit::prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//!
//!     #[test]
//!     fn reverse_twice_is_identity(xs in vec(any_u8(), 0..64)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         vc_testkit::prop_assert_eq!(ys, xs);
//!     }
//! }
//! ```
//!
//! Case generation draws from [`vc_sim::rng::SimRng`], so every run is
//! deterministic: the same seed yields the same cases on every platform. Set
//! `VC_PROP_SEED` to replay a failure printed by the harness. On failure the
//! harness greedily shrinks the counterexample (bounded number of attempts)
//! before panicking with the minimal arguments it found.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vc_sim::rng::SimRng;

/// Default seed for property runs; override with `VC_PROP_SEED`.
pub const DEFAULT_SEED: u64 = 0xC10D_5EED;

/// Outcome of checking one generated case.
#[derive(Debug, Clone)]
pub enum CaseResult {
    /// The property held.
    Pass,
    /// The case did not satisfy a `prop_assume!` precondition; it is retried
    /// with fresh entropy and does not count toward the case budget.
    Reject,
    /// The property was falsified, with an explanation.
    Fail(String),
}

/// How a generated value is produced and (optionally) simplified.
///
/// `shrink` returns candidate simplifications of a failing value, most
/// aggressive first. Returning an empty vector (the default) opts out of
/// shrinking for that strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value from deterministic entropy.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Built-in strategies and combinators.
pub mod strategy {
    use super::Strategy;
    use std::fmt::Debug;
    use std::ops::{Bound, Range, RangeBounds, RangeInclusive};
    use vc_sim::rng::SimRng;

    macro_rules! int_range_strategies {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SimRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_int(self.start as u64, *value as u64)
                        .into_iter()
                        .map(|c| c as $ty)
                        .collect()
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SimRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo as u64 == 0 && hi as u64 == <$ty>::MAX as u64 {
                        return rng.next_u64() as $ty;
                    }
                    rng.range_u64(lo as u64, hi as u64 + 1) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_int(*self.start() as u64, *value as u64)
                        .into_iter()
                        .map(|c| c as $ty)
                        .collect()
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    /// Shrink candidates for an integer: the lower bound, the midpoint
    /// toward it, and the predecessor.
    fn shrink_int(lo: u64, value: u64) -> Vec<u64> {
        if value <= lo {
            return Vec::new();
        }
        let mut out = Vec::new();
        for cand in [lo, lo + (value - lo) / 2, value - 1] {
            if cand < value && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut SimRng) -> f64 {
            rng.range_f64(self.start, self.end)
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            let mut out = Vec::new();
            // Pull toward the lower bound, preferring zero when it is inside
            // the range (signed magnitudes shrink toward the origin).
            if self.contains(&0.0) && *value != 0.0 {
                out.push(0.0);
            }
            if *value != self.start {
                out.push(self.start);
                out.push(self.start + (*value - self.start) / 2.0);
            }
            out.retain(|c| c != value && self.contains(c));
            out
        }
    }

    macro_rules! any_int_strategies {
        ($($fn_name:ident, $struct_name:ident, $ty:ty);+ $(;)?) => {$(
            /// Strategy over the full domain of the integer type.
            #[derive(Debug, Clone, Copy)]
            pub struct $struct_name;

            impl Strategy for $struct_name {
                type Value = $ty;

                fn generate(&self, rng: &mut SimRng) -> $ty {
                    rng.next_u64() as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    if *value == 0 {
                        Vec::new()
                    } else {
                        vec![0, *value / 2, *value - 1]
                            .into_iter()
                            .filter(|c| c != value)
                            .collect()
                    }
                }
            }

            /// Any value of the integer type, uniformly.
            pub fn $fn_name() -> $struct_name {
                $struct_name
            }
        )+};
    }

    any_int_strategies! {
        any_u8, AnyU8, u8;
        any_u16, AnyU16, u16;
        any_u32, AnyU32, u32;
        any_u64, AnyU64, u64;
    }

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut SimRng) -> bool {
            rng.chance(0.5)
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// `true` or `false`, uniformly.
    pub fn any_bool() -> AnyBool {
        AnyBool
    }

    /// Strategy over `[u8; N]` with uniform bytes.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBytes<const N: usize>;

    impl<const N: usize> Strategy for AnyBytes<N> {
        type Value = [u8; N];

        fn generate(&self, rng: &mut SimRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u32() as u8;
            }
            out
        }

        fn shrink(&self, value: &[u8; N]) -> Vec<[u8; N]> {
            if value.iter().all(|&b| b == 0) {
                return Vec::new();
            }
            let mut zeroed = *value;
            if let Some(b) = zeroed.iter_mut().find(|b| **b != 0) {
                *b = 0;
            }
            vec![[0u8; N], zeroed]
        }
    }

    /// A uniformly random byte array.
    pub fn any_bytes<const N: usize>() -> AnyBytes<N> {
        AnyBytes
    }

    /// Strategy over `[u64; N]` with uniform words.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyWords<const N: usize>;

    impl<const N: usize> Strategy for AnyWords<N> {
        type Value = [u64; N];

        fn generate(&self, rng: &mut SimRng) -> [u64; N] {
            let mut out = [0u64; N];
            for w in out.iter_mut() {
                *w = rng.next_u64();
            }
            out
        }

        fn shrink(&self, value: &[u64; N]) -> Vec<[u64; N]> {
            if value.iter().all(|&w| w == 0) {
                return Vec::new();
            }
            let mut zeroed = *value;
            if let Some(w) = zeroed.iter_mut().find(|w| **w != 0) {
                *w = 0;
            }
            vec![[0u64; N], zeroed]
        }
    }

    /// A uniformly random `u64` array (e.g. bignum limbs).
    pub fn any_words<const N: usize>() -> AnyWords<N> {
        AnyWords
    }

    /// Always yields a clone of the given value (no shrinking).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SimRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy defined by an arbitrary closure over the entropy stream.
    ///
    /// This is the escape hatch for domain-specific generators (recursive
    /// structures, correlated fields); such values do not shrink.
    pub struct FromFn<F>(F);

    impl<T, F> Strategy for FromFn<F>
    where
        T: Clone + Debug,
        F: Fn(&mut SimRng) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut SimRng) -> T {
            (self.0)(rng)
        }
    }

    /// Builds a strategy from a generator closure.
    pub fn from_fn<T, F>(f: F) -> FromFn<F>
    where
        T: Clone + Debug,
        F: Fn(&mut SimRng) -> T,
    {
        FromFn(f)
    }

    /// Uniformly picks one of the listed values.
    pub fn one_of<T: Clone + Debug>(options: &[T]) -> OneOf<T> {
        assert!(!options.is_empty(), "one_of needs at least one option");
        OneOf(options.to_vec())
    }

    /// Strategy that picks uniformly from a fixed list (shrinks toward the
    /// first entry).
    #[derive(Debug, Clone)]
    pub struct OneOf<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut SimRng) -> T {
            self.0[rng.index(self.0.len())].clone()
        }
    }

    /// Vectors of values from `inner` with length drawn from `len`.
    pub fn vec<S: Strategy>(inner: S, len: impl RangeBounds<usize>) -> VecStrategy<S> {
        let lo = match len.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match len.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => lo + 64,
        };
        assert!(lo < hi, "empty length range for vec strategy");
        VecStrategy { inner, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        inner: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SimRng) -> Vec<S::Value> {
            let len = if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.range_u64(self.lo as u64, self.hi as u64) as usize
            };
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first: shorter vectors are simpler.
            if value.len() > self.lo {
                out.push(value[..self.lo].to_vec());
                let half = value.len() / 2;
                if half > self.lo {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then element-wise shrinks on a bounded prefix.
            for (i, elem) in value.iter().enumerate().take(4) {
                for cand in self.inner.shrink(elem).into_iter().take(2) {
                    let mut copy = value.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SimRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx).into_iter().take(3) {
                            let mut copy = value.clone();
                            copy.$idx = cand;
                            out.push(copy);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    tuple_strategies! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

fn seed_from_env() -> u64 {
    match std::env::var("VC_PROP_SEED") {
        Ok(s) => {
            s.trim().parse().unwrap_or_else(|_| panic!("VC_PROP_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Maximum shrink attempts per failing property.
const SHRINK_BUDGET: u32 = 256;

/// Executes a property: `cases` generated inputs checked against `check`.
///
/// Called by the [`prop!`](crate::prop!) macro; use directly for properties
/// that need a custom driver. Panics (failing the test) on the first
/// falsified case, after bounded greedy shrinking.
pub fn run<S, F>(name: &str, cases: u32, strategy: S, mut check: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> CaseResult,
{
    let seed = seed_from_env();
    let mut master = SimRng::seed_from(seed);
    let mut checked = move |value: S::Value| -> CaseResult {
        match catch_unwind(AssertUnwindSafe(|| check(value))) {
            Ok(outcome) => outcome,
            Err(payload) => CaseResult::Fail(panic_message(payload)),
        }
    };

    let max_rejects = cases as u64 * 16 + 100;
    let mut rejects = 0u64;
    let mut done = 0u32;
    let mut attempt = 0u64;
    while done < cases {
        let mut rng = master.fork(attempt);
        attempt += 1;
        let value = strategy.generate(&mut rng);
        match checked(value.clone()) {
            CaseResult::Pass => done += 1,
            CaseResult::Reject => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property '{name}': too many rejected cases ({rejects}); \
                     loosen the prop_assume! preconditions or the strategies"
                );
            }
            CaseResult::Fail(msg) => {
                let (minimal, final_msg) = shrink_failure(&strategy, value, msg, &mut checked);
                panic!(
                    "property '{name}' falsified on case {done} (seed {seed}; \
                     set VC_PROP_SEED={seed} to replay)\n  {final_msg}\n  \
                     minimal args: {minimal:?}"
                );
            }
        }
    }
}

fn shrink_failure<S, F>(
    strategy: &S,
    initial: S::Value,
    initial_msg: String,
    check: &mut F,
) -> (S::Value, String)
where
    S: Strategy,
    F: FnMut(S::Value) -> CaseResult,
{
    let mut best = initial;
    let mut best_msg = initial_msg;
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in strategy.shrink(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let CaseResult::Fail(msg) = check(cand.clone()) {
                best = cand;
                best_msg = msg;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_msg)
}

/// Declares seeded property tests. See the [module docs](crate::prop) for an
/// example. The `#![cases(N)]` header is mandatory and sets how many cases
/// each property checks.
#[macro_export]
macro_rules! prop {
    {
        #![cases($cases:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )+
    } => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ( $($strat,)+ );
                $crate::prop::run(stringify!($name), $cases, __strategy, |($($arg,)+)| {
                    $body
                    $crate::prop::CaseResult::Pass
                });
            }
        )+
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {} == {} — {}\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: {} != {} — {}\n    both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            ));
        }
    }};
}

/// Discards the current case (retried with fresh entropy) if the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::prop::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::strategy::*;
    use super::*;

    #[test]
    fn same_seed_generates_same_cases() {
        let strat = (any_u64(), vec(any_u8(), 0..16));
        let mut a = SimRng::seed_from(1).fork(0);
        let mut b = SimRng::seed_from(1).fork(0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3u8..=5).generate(&mut rng);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = vec(any_u8(), 2..7);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let fixed = vec(any_u8(), 4..=4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    #[test]
    fn shrinking_minimizes_a_threshold_failure() {
        // Property "x < 500" fails for x >= 500; greedy shrinking must land
        // well below the initial counterexample, at or near the boundary.
        let strat = (0u64..100_000,);
        let mut check = |(x,): (u64,)| {
            if x < 500 {
                CaseResult::Pass
            } else {
                CaseResult::Fail("too big".into())
            }
        };
        let (minimal, _) = shrink_failure(&strat, (99_999,), "too big".into(), &mut check);
        assert!(minimal.0 >= 500, "shrunk past the failure boundary");
        assert!(minimal.0 < 2_000, "barely shrunk at all: {}", minimal.0);
    }

    #[test]
    fn rejected_cases_do_not_consume_budget() {
        let mut seen = 0u32;
        run("rejects", 16, (any_u64(),), |(x,)| {
            if x % 2 == 0 {
                return CaseResult::Reject;
            }
            seen += 1;
            CaseResult::Pass
        });
        assert_eq!(seen, 16);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_context() {
        run("always_fails", 8, (any_u64(),), |(_x,)| CaseResult::Fail("nope".into()));
    }

    prop! {
        #![cases(32)]

        #[test]
        fn macro_api_works(a in any_u64(), xs in vec(any_u8(), 0..8)) {
            crate::prop_assume!(a != 0);
            crate::prop_assert!(a > 0);
            crate::prop_assert_eq!(xs.len(), xs.len());
            crate::prop_assert_ne!(a, 0);
        }
    }
}
