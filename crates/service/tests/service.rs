//! End-to-end tests over real loopback sockets: wire round-trips, the
//! determinism contract under concurrent load, backpressure, and drain.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::thread;

use vc_net::svc::JobPhase;
use vc_net::svc::{read_decode, FLAG_TRACE};
use vc_service::client::Client;
use vc_service::job::{run_job, JobSpec};
use vc_service::loadgen::{run_load, LoadConfig, Mode};
use vc_service::server::{Server, ServerConfig};
use vc_service::supervisor::SupervisorConfig;

/// Starts a daemon on an ephemeral loopback port; returns its address
/// and the thread running the accept loop.
fn start_server(workers: usize, queue_cap: usize) -> (String, thread::JoinHandle<()>) {
    let config =
        ServerConfig { addr: "127.0.0.1:0".into(), pool: SupervisorConfig { workers, queue_cap } };
    let server = Server::bind(&config).expect("bind ephemeral loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

fn spec(scenario: &str, seed: u64, ticks: u32, flags: u32) -> JobSpec {
    JobSpec { scenario: scenario.into(), seed, ticks, flags }
}

#[test]
fn daemon_result_is_byte_identical_to_in_process_run() {
    let (addr, server) = start_server(2, 16);
    let s = spec("urban-cluster", 42, 64, FLAG_TRACE);
    let reference = run_job(&s, None).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(&s).unwrap().expect("admitted");
    let result = client.fetch_result(job).unwrap();
    assert_eq!(result.phase, JobPhase::Done);
    assert_eq!(result.stats, reference.stats, "stats bytes must match in-process run");
    assert_eq!(result.trace, reference.trace, "trace bytes must match in-process run");
    assert_eq!(result.checksum, reference.checksum);
    assert!(!result.trace.is_empty(), "FLAG_TRACE must produce trace bytes");

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn concurrent_identical_jobs_all_return_identical_bytes() {
    // The tentpole's multi-tenancy claim: N copies of the same job racing
    // across the worker pool and different connections produce N
    // byte-identical results.
    let (addr, server) = start_server(4, 32);
    let s = spec("urban-epidemic", 7, 48, FLAG_TRACE);
    let reference = run_job(&s, None).unwrap();

    let results: Vec<_> = (0..8)
        .map(|_| {
            let (addr, s) = (addr.clone(), s.clone());
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let job = client.submit(&s).unwrap().expect("admitted");
                client.fetch_result(job).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    assert_eq!(results.len(), 8);
    for r in &results {
        assert_eq!(r.phase, JobPhase::Done);
        assert_eq!(r.stats, reference.stats);
        assert_eq!(r.trace, reference.trace);
        assert_eq!(r.checksum, reference.checksum);
    }

    Client::connect(&addr).unwrap().shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn mixed_concurrent_load_does_not_leak_observability_between_jobs() {
    // Run different (scenario, seed) jobs concurrently with tracing on;
    // every result must still match its own isolated in-process run —
    // i.e. no tenant's Recorder sees another tenant's events.
    let (addr, server) = start_server(4, 32);
    let specs: Vec<JobSpec> = vec![
        spec("urban-epidemic", 1, 48, FLAG_TRACE),
        spec("urban-greedy", 2, 48, FLAG_TRACE),
        spec("highway-mozo", 3, 48, FLAG_TRACE),
        spec("canyon-greedy", 4, 48, FLAG_TRACE),
        spec("urban-epidemic", 5, 48, 0),
        spec("highway-epidemic", 6, 48, FLAG_TRACE),
    ];
    let handles: Vec<_> = specs
        .iter()
        .cloned()
        .map(|s| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let job = client.submit(&s).unwrap().expect("admitted");
                (s, client.fetch_result(job).unwrap())
            })
        })
        .collect();
    for h in handles {
        let (s, result) = h.join().unwrap();
        let reference = run_job(&s, None).unwrap();
        assert_eq!(result.stats, reference.stats, "{}/{}", s.scenario, s.seed);
        assert_eq!(result.trace, reference.trace, "{}/{}", s.scenario, s.seed);
        assert_eq!(result.checksum, reference.checksum);
    }
    Client::connect(&addr).unwrap().shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn status_cancel_and_metrics_over_the_wire() {
    let (addr, server) = start_server(1, 16);
    let mut client = Client::connect(&addr).unwrap();

    // Occupy the single worker, then watch a queued job behind it.
    let long = client.submit(&spec("urban-epidemic", 1, 2_000, 0)).unwrap().unwrap();
    let queued = client.submit(&spec("urban-greedy", 2, 2_000, 0)).unwrap().unwrap();
    let (_, depth, times) = client.status(queued).unwrap();
    assert!(depth <= 1, "at most the long job is ahead");
    assert!(times.accepted_ns > 0);

    client.cancel(queued).unwrap();
    let result = client.fetch_result(queued).unwrap();
    assert_eq!(result.phase, JobPhase::Cancelled);
    assert!(result.stats.is_empty());

    client.cancel(long).unwrap();
    let result = client.fetch_result(long).unwrap();
    assert_eq!(result.phase, JobPhase::Cancelled);

    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("svc.submit"), "metrics JSON: {metrics}");
    assert!(metrics.contains("svc.cancel"), "metrics JSON: {metrics}");

    assert!(client.status(999).is_err(), "unknown job must error");
    assert!(client.cancel(999).is_err(), "unknown job must error");

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn backpressure_rejections_reach_the_client() {
    let (addr, server) = start_server(1, 1);
    let mut client = Client::connect(&addr).unwrap();
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for i in 0..16 {
        match client.submit(&spec("urban-epidemic", i, 400, 0)).unwrap() {
            Ok(id) => accepted.push(id),
            Err((reason, _)) => {
                assert_eq!(reason, vc_net::svc::RejectReason::QueueFull);
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "a 1-slot queue must reject under a 16-job burst");
    for id in accepted {
        assert_eq!(client.fetch_result(id).unwrap().phase, JobPhase::Done);
    }
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn malformed_bytes_get_an_error_frame_not_a_crash() {
    let (addr, server) = start_server(1, 4);
    let mut stream = TcpStream::connect(&addr).unwrap();
    // A declared length beyond MAX_FRAME_LEN must be answered and the
    // connection closed without taking the daemon down.
    stream.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    match read_decode(&mut reader) {
        Ok(Some(vc_net::svc::Frame::Error { detail })) => {
            assert!(detail.contains("protocol error"), "detail: {detail}");
        }
        other => panic!("expected an Error frame, got {other:?}"),
    }
    // The daemon is still alive and serving.
    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(&spec("urban-epidemic", 1, 16, 0)).unwrap().unwrap();
    assert_eq!(client.fetch_result(job).unwrap().phase, JobPhase::Done);
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn loadgen_closed_and_open_loops_report_sane_numbers() {
    let (addr, server) = start_server(4, 64);
    let closed = LoadConfig {
        addr: addr.clone(),
        clients: 3,
        jobs_per_client: 4,
        mix: vec!["urban-epidemic".into(), "canyon-greedy".into()],
        ticks: 32,
        flags: 0,
        seed: 5,
        mode: Mode::Closed,
    };
    let report = run_load(&closed).unwrap();
    assert_eq!(report.submitted, 12);
    assert_eq!(report.completed, 12);
    assert_eq!(report.rejected, 0);
    assert!(report.jobs_per_sec > 0.0);
    assert!(report.e2e_us.p99 >= report.e2e_us.p50);
    // The JSON schema is fixed: every key present regardless of values.
    let json = report.to_json(&closed).to_string_compact();
    for key in
        ["\"submitted\"", "\"jobs_per_sec\"", "\"queue_us\"", "\"run_us\"", "\"e2e_us\"", "\"p99\""]
    {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }

    let open = LoadConfig { mode: Mode::Open { rate_hz: 200.0 }, ..closed };
    let report = run_load(&open).unwrap();
    assert_eq!(report.completed + report.failed + report.cancelled, report.accepted);
    assert!(report.completed > 0);

    Client::connect(&addr).unwrap().shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn run_job_rejects_bad_specs_and_honours_cancel() {
    assert!(run_job(&spec("nope", 1, 10, 0), None).is_err());
    assert!(run_job(&spec("urban-epidemic", 1, 0, 0), None).is_err());
    assert!(run_job(&spec("urban-epidemic", 1, 10, 0x8000_0000), None).is_err());
    let cancel = AtomicBool::new(true);
    let err = run_job(&spec("urban-epidemic", 1, 500, 0), Some(&cancel)).unwrap_err();
    assert_eq!(err, vc_service::job::JobError::Cancelled);
}
