//! The service determinism contract, enforced against the real `vcloudd`
//! binary: N identical jobs submitted concurrently from separate client
//! threads return byte-identical RESULT payloads — identical to each
//! other, to the in-process [`run_job`] reference, and across daemon
//! shard counts (`VC_SHARDS=1` vs `VC_SHARDS=8`).
//!
//! `VC_SHARDS` is read once per process, so each shard count needs its
//! own daemon subprocess; the in-process reference runs in this test
//! process with whatever sharding the harness has.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::thread;

use vc_net::svc::{JobPhase, FLAG_TRACE};
use vc_service::client::Client;
use vc_service::job::{run_job, JobSpec};

struct Daemon {
    child: Child,
    addr: String,
}

/// Spawns `vcloudd` with the given env, parses the announced address.
fn spawn_daemon(workers: usize, envs: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_vcloudd"));
    cmd.args(["--addr", "127.0.0.1:0", "--workers", &workers.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn vcloudd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("vcloudd announces its address").unwrap();
    let addr = banner
        .strip_prefix("vcloudd listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    // Keep draining stdout so the daemon never blocks on a full pipe.
    thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Daemon { child, addr }
}

impl Daemon {
    fn stop(mut self) {
        let mut client = Client::connect(&self.addr).expect("connect for shutdown");
        client.shutdown().expect("graceful drain");
        let status = self.child.wait().expect("wait vcloudd");
        assert!(status.success(), "vcloudd must exit 0 after drain, got {status:?}");
    }
}

/// Submits `n` copies of `spec` concurrently, one client thread each,
/// and returns the (stats, trace, checksum) triples.
fn submit_burst(addr: &str, spec: &JobSpec, n: usize) -> Vec<(Vec<u8>, Vec<u8>, u64)> {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let (addr, spec) = (addr.to_string(), spec.clone());
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let job = client.submit(&spec).unwrap().expect("admitted");
                let r = client.fetch_result(job).unwrap();
                assert_eq!(r.phase, JobPhase::Done);
                (r.stats, r.trace, r.checksum)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn concurrent_results_are_byte_identical_across_shard_counts() {
    let spec =
        JobSpec { scenario: "urban-epidemic".into(), seed: 1234, ticks: 48, flags: FLAG_TRACE };
    let reference = run_job(&spec, None).unwrap();
    assert!(!reference.trace.is_empty());

    for shards in ["1", "8"] {
        let daemon = spawn_daemon(4, &[("VC_SHARDS", shards)]);
        let results = submit_burst(&daemon.addr, &spec, 8);
        assert_eq!(results.len(), 8);
        for (stats, trace, checksum) in &results {
            assert_eq!(
                stats, &reference.stats,
                "VC_SHARDS={shards}: daemon stats differ from in-process run"
            );
            assert_eq!(
                trace, &reference.trace,
                "VC_SHARDS={shards}: daemon trace differs from in-process run"
            );
            assert_eq!(*checksum, reference.checksum);
        }
        daemon.stop();
    }
}

#[test]
fn interleaved_mixed_jobs_stay_independent_under_contention() {
    // Two different job identities interleaved across 8 submitting
    // threads on a 2-worker daemon: every result must match its own
    // reference, proving neither concurrency nor submission order leaks
    // into the payload.
    let spec_a = JobSpec { scenario: "highway-mozo".into(), seed: 9, ticks: 40, flags: FLAG_TRACE };
    let spec_b = JobSpec { scenario: "urban-greedy".into(), seed: 10, ticks: 56, flags: 0 };
    let ref_a = run_job(&spec_a, None).unwrap();
    let ref_b = run_job(&spec_b, None).unwrap();

    let daemon = spawn_daemon(2, &[]);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = daemon.addr.clone();
            let spec = if i % 2 == 0 { spec_a.clone() } else { spec_b.clone() };
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let job = client.submit(&spec).unwrap().expect("admitted");
                (i, client.fetch_result(job).unwrap())
            })
        })
        .collect();
    for h in handles {
        let (i, r) = h.join().unwrap();
        let reference = if i % 2 == 0 { &ref_a } else { &ref_b };
        assert_eq!(r.stats, reference.stats, "submitter {i}");
        assert_eq!(r.trace, reference.trace, "submitter {i}");
        assert_eq!(r.checksum, reference.checksum, "submitter {i}");
    }
    daemon.stop();
}
