//! The `vcloudd` TCP front end: accept loop, per-connection handlers,
//! result streaming, and graceful shutdown.
//!
//! Networking is plain `std::net` over loopback by default — the daemon is
//! an in-lab scenario service, not an internet-facing one. Each accepted
//! connection gets its own handler thread speaking [`vc_net::svc`] frames;
//! all of them share one [`SupervisorHandle`].

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vc_net::svc::{read_decode, write_frame, Channel, Frame, JobPhase, CHUNK_LEN};

use crate::job::JobSpec;
use crate::supervisor::{Finished, Supervisor, SupervisorConfig, SupervisorHandle};

/// Daemon configuration (worker pool + listen address).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub addr: String,
    /// Worker pool / admission settings.
    pub pool: SupervisorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".into(), pool: SupervisorConfig::default() }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a client
/// sends SHUTDOWN and the drain completes.
pub struct Server {
    listener: TcpListener,
    supervisor: Supervisor,
    shutdown: Arc<AtomicBool>,
    active_conns: Arc<AtomicU64>,
}

impl Server {
    /// Binds the listener and starts the worker pool.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            supervisor: Supervisor::start(config.pool),
            shutdown: Arc::new(AtomicBool::new(false)),
            active_conns: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until SHUTDOWN: accepts, spawns one handler
    /// thread per connection, and after the drain joins the worker pool.
    /// Returns the number of connections served.
    pub fn run(self) -> io::Result<u64> {
        let addr = self.listener.local_addr()?;
        let mut served = 0u64;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            served += 1;
            self.active_conns.fetch_add(1, Ordering::SeqCst);
            let sup = self.supervisor.handle();
            let shutdown = Arc::clone(&self.shutdown);
            let conns = Arc::clone(&self.active_conns);
            std::thread::spawn(move || {
                let _ = handle_conn(stream, &sup, &shutdown, addr);
                conns.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // SHUTDOWN's Okay is only sent after the drain, so every admitted
        // job is terminal here; joining the pool is now instant.
        self.supervisor.drain();
        // Give in-flight responses on other connections a bounded window
        // to finish streaming before the process (in the binary) exits.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while self.active_conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        Ok(served)
    }
}

/// Serves one connection: a loop of client frames, each answered in
/// order on the same stream.
fn handle_conn(
    stream: TcpStream,
    sup: &SupervisorHandle,
    shutdown: &AtomicBool,
    server_addr: std::net::SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_decode(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // client closed cleanly
            Err(e) => {
                // Protocol violation: answer once, then drop the
                // connection (the stream may be unsynchronized).
                let detail = format!("protocol error: {e}");
                let _ = write_frame(&mut writer, &Frame::Error { detail });
                let _ = writer.flush();
                return Ok(());
            }
        };
        match frame {
            Frame::Submit { scenario, seed, ticks, flags } => {
                let spec = JobSpec { scenario, seed, ticks, flags };
                let reply = match sup.submit(spec) {
                    Ok(job) => Frame::Accepted { job },
                    Err((reason, detail)) => Frame::Rejected { reason, detail },
                };
                write_frame(&mut writer, &reply)?;
            }
            Frame::Status { job } => {
                let reply = match sup.status(job) {
                    Some((phase, queue_depth, times)) => {
                        Frame::JobStatus { job, phase, queue_depth, times }
                    }
                    None => Frame::Error { detail: format!("unknown job {job}") },
                };
                write_frame(&mut writer, &reply)?;
            }
            Frame::Result { job } => match sup.wait_result(job) {
                Some(fin) => stream_result(&mut writer, job, &fin)?,
                None => write_frame(
                    &mut writer,
                    &Frame::Error { detail: format!("unknown job {job}") },
                )?,
            },
            Frame::Cancel { job } => {
                let reply = if sup.cancel(job) {
                    Frame::Okay
                } else {
                    Frame::Error { detail: format!("unknown job {job}") }
                };
                write_frame(&mut writer, &reply)?;
            }
            Frame::Metrics => {
                write_frame(&mut writer, &Frame::MetricsReply { json: sup.metrics_json() })?;
            }
            Frame::Shutdown => {
                // Drain first so Okay certifies "every admitted job is
                // terminal", then wake the accept loop with a loopback
                // connect so Server::run can exit.
                sup.begin_drain();
                write_frame(&mut writer, &Frame::Okay)?;
                writer.flush()?;
                shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(server_addr);
                return Ok(());
            }
            other => {
                let detail = format!("unexpected client frame: {other:?}");
                write_frame(&mut writer, &Frame::Error { detail })?;
            }
        }
        writer.flush()?;
    }
}

/// Streams a terminal job back: header (exact lengths + checksum), stats
/// chunks, trace chunks, end marker.
fn stream_result<W: Write>(writer: &mut W, job: u64, fin: &Finished) -> io::Result<()> {
    write_frame(
        writer,
        &Frame::ResultHeader {
            job,
            phase: fin.phase,
            checksum: fin.output.checksum,
            stats_len: fin.output.stats.len() as u64,
            trace_len: fin.output.trace.len() as u64,
            times: fin.times,
        },
    )?;
    for (channel, bytes) in
        [(Channel::Stats, &fin.output.stats), (Channel::Trace, &fin.output.trace)]
    {
        for data in bytes.chunks(CHUNK_LEN) {
            write_frame(writer, &Frame::Chunk { job, channel, data: data.to_vec() })?;
        }
    }
    if fin.phase == JobPhase::Failed && !fin.detail.is_empty() {
        // Failure detail rides after the (empty) payload so clients can
        // surface it; it is advisory and outside the checksum.
        write_frame(writer, &Frame::Error { detail: fin.detail.clone() })?;
    }
    write_frame(writer, &Frame::ResultEnd { job })?;
    Ok(())
}

/// Convenience for tests and the binary: bind + report + run.
pub fn bind_and_announce(config: &ServerConfig) -> io::Result<(Server, std::net::SocketAddr)> {
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    Ok((server, addr))
}

/// Resolves an address string early so bad `--addr` values fail fast.
pub fn resolve_addr(addr: &str) -> io::Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing"))
}
