//! `vcload` — open/closed-loop load generator for `vcloudd`.
//!
//! Submits a configurable job mix from N concurrent client connections,
//! measures throughput and submit→accept→start→complete latency from the
//! server's own lifecycle timestamps, and emits a deterministic-schema
//! JSON report (values are wall-clock measurements; the key set and
//! order never change).

use std::process::ExitCode;

use vc_service::job::SCENARIOS;
use vc_service::loadgen::{run_load, LoadConfig, Mode};

const USAGE: &str = "\
vcload — load generator for vcloudd

USAGE:
    vcload --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT   daemon address (required)
    --clients N        concurrent client connections (default 4)
    --jobs N           jobs per client (default 8)
    --mix steady|mixed steady = urban-epidemic only; mixed = full catalog (default steady)
    --scenario ID      single-scenario mix override (repeatable)
    --ticks N          rounds per job (default 64)
    --trace            request the recorder trace with every job
    --seed N           base seed for the deterministic job stream (default 1)
    --open RATE        open-loop at RATE submits/sec per client (default: closed loop)
    --json PATH        also write the JSON report to PATH ('-' = stdout only)
    --once SCENARIO    submit exactly one job (with --seed/--ticks/--trace), fetch its
                       RESULT, and print the checksum; with --out DIR also write the
                       exact stats/trace bytes for comparison with `experiments --job`
    --out DIR          output directory for --once (stats.json, trace.jsonl)
    --shutdown         send SHUTDOWN and wait for the drain acknowledgement, then exit
    --list             print the scenario catalog and exit
    --help             print this help
";

/// What this invocation does besides (or instead of) generating load.
enum Action {
    Load,
    Once { scenario: String, out: Option<String> },
    Shutdown,
}

fn parse_args() -> Result<(LoadConfig, Option<String>, Action), String> {
    let mut config = LoadConfig::default();
    let mut json_path = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut addr_given = false;
    let mut once: Option<String> = None;
    let mut out: Option<String> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        let parse_num = |flag: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|_| format!("{flag} expects an unsigned integer"))
        };
        match arg.as_str() {
            "--addr" => {
                config.addr = value("--addr")?;
                addr_given = true;
            }
            "--clients" => config.clients = parse_num("--clients", value("--clients")?)? as usize,
            "--jobs" => config.jobs_per_client = parse_num("--jobs", value("--jobs")?)? as usize,
            "--ticks" => config.ticks = parse_num("--ticks", value("--ticks")?)? as u32,
            "--seed" => config.seed = parse_num("--seed", value("--seed")?)?,
            "--trace" => config.flags |= vc_net::svc::FLAG_TRACE,
            "--mix" => match value("--mix")?.as_str() {
                "steady" => scenarios = vec!["urban-epidemic".into()],
                "mixed" => scenarios = SCENARIOS.iter().map(|e| e.id.to_string()).collect(),
                other => return Err(format!("unknown mix {other:?} (steady|mixed)")),
            },
            "--scenario" => scenarios.push(value("--scenario")?),
            "--open" => {
                let rate: f64 = value("--open")?
                    .parse()
                    .map_err(|_| "--open expects a rate in submits/sec".to_string())?;
                if rate.is_nan() || rate <= 0.0 {
                    return Err("--open rate must be positive".into());
                }
                config.mode = Mode::Open { rate_hz: rate };
            }
            "--json" => json_path = Some(value("--json")?),
            "--once" => once = Some(value("--once")?),
            "--out" => out = Some(value("--out")?),
            "--shutdown" => shutdown = true,
            "--list" => {
                for e in SCENARIOS {
                    println!("{:<18} {}", e.id, e.desc);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !addr_given {
        return Err("--addr is required".into());
    }
    if !scenarios.is_empty() {
        for s in &scenarios {
            if vc_service::job::find_scenario(s).is_none() {
                return Err(format!("unknown scenario {s:?} (see --list)"));
            }
        }
        config.mix = scenarios;
    }
    if config.clients == 0 || config.jobs_per_client == 0 {
        return Err("--clients and --jobs must be at least 1".into());
    }
    let action = if shutdown {
        Action::Shutdown
    } else if let Some(scenario) = once {
        if vc_service::job::find_scenario(&scenario).is_none() {
            return Err(format!("unknown scenario {scenario:?} (see --list)"));
        }
        Action::Once { scenario, out }
    } else {
        Action::Load
    };
    Ok((config, json_path, action))
}

/// `--once`: one submit + RESULT fetch, bytes out, checksum on stdout in
/// the same line format `experiments --job` prints.
fn run_once(config: &LoadConfig, scenario: &str, out: Option<&str>) -> std::io::Result<()> {
    let mut client = vc_service::client::Client::connect(&config.addr)?;
    let spec = vc_service::job::JobSpec {
        scenario: scenario.into(),
        seed: config.seed,
        ticks: config.ticks,
        flags: config.flags,
    };
    let job = client.submit(&spec)?.map_err(|(reason, detail)| {
        std::io::Error::other(format!("rejected ({reason:?}): {detail}"))
    })?;
    let result = client.fetch_result(job)?;
    if !result.detail.is_empty() {
        return Err(std::io::Error::other(format!("job failed: {}", result.detail)));
    }
    println!(
        "job {scenario} seed={} ticks={} flags={} checksum={:#018x} stats_len={} trace_len={}",
        spec.seed,
        spec.ticks,
        spec.flags,
        result.checksum,
        result.stats.len(),
        result.trace.len()
    );
    if let Some(dir) = out {
        std::fs::create_dir_all(dir)?;
        std::fs::write(format!("{dir}/stats.json"), &result.stats)?;
        std::fs::write(format!("{dir}/trace.jsonl"), &result.trace)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let (config, json_path, action) = match parse_args() {
        Ok(parsed) => parsed,
        Err(why) => {
            eprintln!("vcload: {why}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match action {
        Action::Load => {}
        Action::Once { scenario, out } => {
            return match run_once(&config, &scenario, out.as_deref()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("vcload: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Action::Shutdown => {
            return match vc_service::client::Client::connect(&config.addr)
                .and_then(|mut c| c.shutdown())
            {
                Ok(()) => {
                    println!("vcload: daemon drained and acknowledged shutdown");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vcload: shutdown failed: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    }
    let report = match run_load(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("vcload: load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "vcload: {} submitted, {} accepted, {} rejected, {} completed ({} failed, {} cancelled)",
        report.submitted,
        report.accepted,
        report.rejected,
        report.completed,
        report.failed,
        report.cancelled
    );
    println!(
        "vcload: {:.2} jobs/s over {:.2}s; e2e latency p50 {:.0}us p90 {:.0}us p99 {:.0}us",
        report.jobs_per_sec,
        report.elapsed_s,
        report.e2e_us.p50,
        report.e2e_us.p90,
        report.e2e_us.p99
    );
    let json = report.to_json(&config).to_string_pretty();
    match json_path.as_deref() {
        None | Some("-") => println!("{json}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("vcload: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("vcload: report written to {path}");
        }
    }
    if report.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
