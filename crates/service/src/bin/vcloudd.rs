//! `vcloudd` — the scenario-service daemon.
//!
//! Binds a loopback TCP socket, announces the bound address on stdout
//! (so scripts using port 0 can discover it), and serves [`vc_net::svc`]
//! frames until a client sends SHUTDOWN. Exit code 0 means every
//! admitted job reached a terminal state before exit.

use std::process::ExitCode;

use vc_service::server::{bind_and_announce, ServerConfig};

const USAGE: &str = "\
vcloudd — vcloud scenario-service daemon

USAGE:
    vcloudd [--addr HOST:PORT] [--workers N] [--queue N]

OPTIONS:
    --addr HOST:PORT   listen address (default 127.0.0.1:0 = ephemeral loopback)
    --workers N        worker threads executing jobs (default 4)
    --queue N          queued-job capacity before SUBMITs are rejected (default 64)
    --help             print this help

The daemon prints one line on startup:
    vcloudd listening on <addr> workers=<n> queue=<n>
and runs until a client sends a SHUTDOWN frame; it then drains (finishes
every admitted job), acknowledges, and exits.
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.pool.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--queue" => {
                config.pool.queue_cap = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a positive integer".to_string())?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.pool.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(why) => {
            eprintln!("vcloudd: {why}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (server, addr) = match bind_and_announce(&config) {
        Ok(bound) => bound,
        Err(e) => {
            eprintln!("vcloudd: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "vcloudd listening on {addr} workers={} queue={}",
        config.pool.workers.max(1),
        config.pool.queue_cap.max(1)
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(served) => {
            println!("vcloudd drained after {served} connections");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vcloudd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
