//! `vcload` — open/closed-loop load generation against a `vcloudd`.
//!
//! Each client thread owns one connection. In closed-loop mode a client
//! submits a job, blocks on its RESULT, then submits the next — measuring
//! the service at its natural pace. In open-loop mode clients pace
//! SUBMITs at a fixed rate regardless of completions (the classic way to
//! expose queueing collapse), then collect all results.
//!
//! Latency is measured from the server's own [`JobTimes`] (queue, run,
//! end-to-end) plus the client-observed submit→result wall time, and is
//! reported as [`Quantiles`] over [`Histogram`]s — the same estimator
//! `vcstat` uses.

use std::io;
use std::time::Instant;

use vc_net::svc::{JobPhase, JobTimes};
use vc_obs::{Histogram, Quantiles};
use vc_sim::rng::SimRng;
use vc_testkit::json::Json;

use crate::client::Client;
use crate::job::JobSpec;

/// Submission pacing discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Submit → wait for RESULT → next. Throughput finds its own level.
    Closed,
    /// Submit at a fixed per-client rate, collect results afterwards.
    Open {
        /// SUBMITs per second per client.
        rate_hz: f64,
    },
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Scenario ids drawn per job (deterministically, from `seed`).
    pub mix: Vec<String>,
    /// Rounds per job.
    pub ticks: u32,
    /// Flags per job ([`vc_net::svc::FLAG_TRACE`]).
    pub flags: u32,
    /// Base seed: client `c`, job `j` derive their own streams from it.
    pub seed: u64,
    /// Pacing discipline.
    pub mode: Mode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7744".into(),
            clients: 4,
            jobs_per_client: 8,
            mix: vec!["urban-epidemic".into()],
            ticks: 64,
            flags: 0,
            seed: 1,
            mode: Mode::Closed,
        }
    }
}

/// One job's measured outcome.
#[derive(Debug, Clone, Copy)]
struct Sample {
    phase: JobPhase,
    times: JobTimes,
    wall_us: f64,
}

/// Aggregated results of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total SUBMIT frames sent.
    pub submitted: u64,
    /// SUBMITs admitted.
    pub accepted: u64,
    /// SUBMITs rejected (backpressure or validation).
    pub rejected: u64,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Jobs that reached `Cancelled`.
    pub cancelled: u64,
    /// Wall-clock duration of the whole run, seconds.
    pub elapsed_s: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Server-side queue wait (accepted→started), microseconds.
    pub queue_us: Quantiles,
    /// Server-side execution (started→finished), microseconds.
    pub run_us: Quantiles,
    /// Server-side end-to-end (accepted→finished), microseconds.
    pub e2e_us: Quantiles,
    /// Client-observed submit→result wall time, microseconds.
    pub wall_us: Quantiles,
}

impl LoadReport {
    /// Renders the report with a fixed key set and order — the schema is
    /// deterministic even though the values are wall-clock measurements.
    pub fn to_json(&self, config: &LoadConfig) -> Json {
        let mode = match config.mode {
            Mode::Closed => Json::from("closed"),
            Mode::Open { rate_hz } => {
                Json::object::<&str>(vec![("open_rate_hz", Json::from(rate_hz))])
            }
        };
        Json::object::<&str>(vec![
            (
                "config",
                Json::object::<&str>(vec![
                    ("clients", Json::from(config.clients)),
                    ("jobs_per_client", Json::from(config.jobs_per_client)),
                    ("mix", Json::array(config.mix.iter().map(|s| Json::from(s.as_str())))),
                    ("ticks", Json::from(config.ticks)),
                    ("flags", Json::from(config.flags)),
                    ("seed", Json::from(config.seed)),
                    ("mode", mode),
                ]),
            ),
            ("submitted", Json::from(self.submitted)),
            ("accepted", Json::from(self.accepted)),
            ("rejected", Json::from(self.rejected)),
            ("completed", Json::from(self.completed)),
            ("failed", Json::from(self.failed)),
            ("cancelled", Json::from(self.cancelled)),
            ("elapsed_s", Json::from(self.elapsed_s)),
            ("jobs_per_sec", Json::from(self.jobs_per_sec)),
            ("queue_us", self.queue_us.to_json()),
            ("run_us", self.run_us.to_json()),
            ("e2e_us", self.e2e_us.to_json()),
            ("wall_us", self.wall_us.to_json()),
        ])
    }
}

fn job_spec(config: &LoadConfig, rng: &mut SimRng) -> JobSpec {
    let scenario = config.mix[rng.index(config.mix.len())].clone();
    JobSpec { scenario, seed: rng.next_u64(), ticks: config.ticks, flags: config.flags }
}

/// One client thread's work; returns its samples and submit/reject counts.
fn client_loop(config: &LoadConfig, client_idx: usize) -> io::Result<(Vec<Sample>, u64, u64)> {
    let mut client = Client::connect(&config.addr)?;
    let mut rng = SimRng::seed_from(config.seed ^ (client_idx as u64).wrapping_mul(0x9e37_79b9));
    let mut samples = Vec::new();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    match config.mode {
        Mode::Closed => {
            for _ in 0..config.jobs_per_client {
                let spec = job_spec(config, &mut rng);
                let begin = Instant::now();
                submitted += 1;
                match client.submit(&spec)? {
                    Ok(job) => {
                        let result = client.fetch_result(job)?;
                        samples.push(Sample {
                            phase: result.phase,
                            times: result.times,
                            wall_us: begin.elapsed().as_secs_f64() * 1e6,
                        });
                    }
                    Err(_) => rejected += 1,
                }
            }
        }
        Mode::Open { rate_hz } => {
            let period = std::time::Duration::from_secs_f64(1.0 / rate_hz.max(0.001));
            let start = Instant::now();
            let mut pending = Vec::new();
            for i in 0..config.jobs_per_client {
                let due = period * i as u32;
                if let Some(sleep) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(sleep);
                }
                let spec = job_spec(config, &mut rng);
                submitted += 1;
                match client.submit(&spec)? {
                    Ok(job) => pending.push((job, Instant::now())),
                    Err(_) => rejected += 1,
                }
            }
            for (job, begin) in pending {
                let result = client.fetch_result(job)?;
                samples.push(Sample {
                    phase: result.phase,
                    times: result.times,
                    wall_us: begin.elapsed().as_secs_f64() * 1e6,
                });
            }
        }
    }
    Ok((samples, submitted, rejected))
}

/// Runs the configured load and aggregates every client's measurements.
pub fn run_load(config: &LoadConfig) -> io::Result<LoadReport> {
    let start = Instant::now();
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|c| {
            let config = config.clone();
            std::thread::spawn(move || client_loop(&config, c))
        })
        .collect();
    let mut samples = Vec::new();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (s, sub, rej) = h.join().expect("client thread panicked")?;
        samples.extend(s);
        submitted += sub;
        rejected += rej;
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut queue = Histogram::new();
    let mut run = Histogram::new();
    let mut e2e = Histogram::new();
    let mut wall = Histogram::new();
    let (mut completed, mut failed, mut cancelled) = (0u64, 0u64, 0u64);
    for s in &samples {
        match s.phase {
            JobPhase::Done => completed += 1,
            JobPhase::Failed => failed += 1,
            JobPhase::Cancelled => cancelled += 1,
            JobPhase::Queued | JobPhase::Running => {}
        }
        let t = s.times;
        if t.started_ns >= t.accepted_ns && t.started_ns > 0 {
            queue.record((t.started_ns - t.accepted_ns) as f64 / 1_000.0);
        }
        if t.finished_ns >= t.started_ns && t.finished_ns > 0 {
            run.record((t.finished_ns - t.started_ns) as f64 / 1_000.0);
            e2e.record((t.finished_ns - t.accepted_ns) as f64 / 1_000.0);
        }
        wall.record(s.wall_us);
    }
    Ok(LoadReport {
        submitted,
        accepted: samples.len() as u64,
        rejected,
        completed,
        failed,
        cancelled,
        elapsed_s,
        jobs_per_sec: if elapsed_s > 0.0 { completed as f64 / elapsed_s } else { 0.0 },
        queue_us: queue.quantiles().unwrap_or_default(),
        run_us: run.quantiles().unwrap_or_default(),
        e2e_us: e2e.quantiles().unwrap_or_default(),
        wall_us: wall.quantiles().unwrap_or_default(),
    })
}
