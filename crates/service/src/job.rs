//! The scenario catalog and the single deterministic job runner.
//!
//! Every way of executing a scenario job — a `vcloudd` worker thread, the
//! `experiments --job` in-process mode, a test — goes through [`run_job`],
//! which is what makes the service's determinism contract checkable: the
//! daemon can only ever return bytes this function produced.

use std::sync::atomic::{AtomicBool, Ordering};

use vc_net::netsim::NetSim;
use vc_net::routing::{ClusterRouting, Epidemic, GreedyGeo, MozoRouting, RoutingProtocol};
use vc_net::svc::fnv1a64;
use vc_obs::{reborrow, MemSize, Recorder};
use vc_sim::scenario::{Scenario, ScenarioBuilder};
use vc_testkit::json::Json;

/// Upper bound on `ticks` accepted for a single job.
pub const MAX_TICKS: u32 = 50_000;

/// Per-job deterministic heap budget (bytes): fleet + network-layer state,
/// measured with the [`MemSize`]/`heap_bytes` capacity accounting, so the
/// same job hits (or clears) the budget identically on every host.
pub const MEM_BUDGET_BYTES: u64 = 64 * 1024 * 1024;

/// How often (in rounds) the runner polls the cancel flag and re-measures
/// the heap footprint against [`MEM_BUDGET_BYTES`].
const CHECK_EVERY_ROUNDS: u32 = 16;

/// One entry in the scenario catalog.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioEntry {
    /// Catalog id clients put in SUBMIT frames.
    pub id: &'static str,
    /// Human-readable description for listings.
    pub desc: &'static str,
    /// Vehicle count of the underlying scenario.
    pub vehicles: usize,
    /// Random source/destination packet pairs injected before the run.
    pub packets: usize,
}

/// The jobs `vcloudd` will run. Ticks and seed come from the client; the
/// map, routing protocol, and traffic shape are fixed per catalog id so a
/// `(scenario, seed, ticks, flags)` tuple fully determines the result.
pub const SCENARIOS: &[ScenarioEntry] = &[
    ScenarioEntry {
        id: "urban-epidemic",
        desc: "urban grid with RSUs, epidemic flooding",
        vehicles: 40,
        packets: 24,
    },
    ScenarioEntry {
        id: "urban-greedy",
        desc: "urban grid with RSUs, greedy geographic forwarding",
        vehicles: 40,
        packets: 24,
    },
    ScenarioEntry {
        id: "urban-cluster",
        desc: "urban grid with RSUs, cluster-backbone routing",
        vehicles: 40,
        packets: 24,
    },
    ScenarioEntry {
        id: "highway-epidemic",
        desc: "highway without infrastructure, epidemic flooding",
        vehicles: 48,
        packets: 24,
    },
    ScenarioEntry {
        id: "highway-mozo",
        desc: "highway without infrastructure, moving-zone routing",
        vehicles: 48,
        packets: 24,
    },
    ScenarioEntry {
        id: "canyon-greedy",
        desc: "urban canyon (harsh LOS), greedy geographic forwarding",
        vehicles: 36,
        packets: 16,
    },
];

/// Looks a catalog id up.
pub fn find_scenario(id: &str) -> Option<&'static ScenarioEntry> {
    SCENARIOS.iter().find(|e| e.id == id)
}

/// Everything that identifies a job run. Mirrors the SUBMIT frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Catalog id ([`SCENARIOS`]).
    pub scenario: String,
    /// Deterministic seed.
    pub seed: u64,
    /// Simulation rounds.
    pub ticks: u32,
    /// [`vc_net::svc::FLAG_TRACE`] and future flags.
    pub flags: u32,
}

impl JobSpec {
    /// Validates the spec against the catalog and service limits without
    /// running anything. `Err` carries a human-readable reason.
    pub fn validate(&self) -> Result<(), JobError> {
        if find_scenario(&self.scenario).is_none() {
            return Err(JobError::UnknownScenario(self.scenario.clone()));
        }
        if self.ticks == 0 || self.ticks > MAX_TICKS {
            return Err(JobError::BadRequest("ticks must be in 1..=50000"));
        }
        if self.flags & !vc_net::svc::FLAG_TRACE != 0 {
            return Err(JobError::BadRequest("unknown flag bits set"));
        }
        Ok(())
    }

    /// Whether the client asked for the recorder trace in the result.
    pub fn wants_trace(&self) -> bool {
        self.flags & vc_net::svc::FLAG_TRACE != 0
    }
}

/// The deterministic result payload of a finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Stats JSON (pretty, trailing newline) — byte-stable for a spec.
    pub stats: Vec<u8>,
    /// Recorder JSONL (empty unless the spec set `FLAG_TRACE`).
    pub trace: Vec<u8>,
    /// `fnv1a64` over stats bytes then trace bytes.
    pub checksum: u64,
}

/// Why a job failed to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Scenario id is not in [`SCENARIOS`].
    UnknownScenario(String),
    /// Spec fails a static limit (ticks range, flag bits).
    BadRequest(&'static str),
    /// The deterministic heap footprint crossed [`MEM_BUDGET_BYTES`].
    BudgetExceeded {
        /// Measured footprint at the failing check.
        used: u64,
        /// The budget it crossed.
        budget: u64,
    },
    /// The cancel flag was observed set.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::UnknownScenario(id) => write!(f, "unknown scenario {id:?}"),
            JobError::BadRequest(why) => write!(f, "bad request: {why}"),
            JobError::BudgetExceeded { used, budget } => {
                write!(f, "memory budget exceeded: {used} > {budget} bytes")
            }
            JobError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

fn build_scenario(entry: &ScenarioEntry, seed: u64) -> Scenario {
    let mut builder = ScenarioBuilder::new();
    builder.seed(seed).vehicles(entry.vehicles);
    match entry.id {
        "highway-epidemic" | "highway-mozo" => builder.highway_no_infra(),
        "canyon-greedy" => builder.urban_canyon(),
        _ => builder.urban_with_rsus(),
    }
}

/// Runs a validated job to completion. `cancel` (when given) is polled
/// every [`CHECK_EVERY_ROUNDS`] rounds; the same cadence re-measures the
/// deterministic heap footprint against [`MEM_BUDGET_BYTES`], so a
/// cancelled or over-budget job stops within a bounded number of rounds.
///
/// The returned bytes depend only on the spec — not on `VC_SHARDS`, the
/// worker thread, wall-clock time, or anything else the daemon is doing.
pub fn run_job(spec: &JobSpec, cancel: Option<&AtomicBool>) -> Result<JobOutput, JobError> {
    spec.validate()?;
    let entry = find_scenario(&spec.scenario).expect("validated above");
    let mut scenario = build_scenario(entry, spec.seed);
    let mut recorder = spec.wants_trace().then(Recorder::new);
    let stats_json = match entry.id {
        "urban-epidemic" | "highway-epidemic" => {
            drive(spec, entry, &mut scenario, Epidemic, cancel, recorder.as_mut())
        }
        "urban-greedy" | "canyon-greedy" => {
            drive(spec, entry, &mut scenario, GreedyGeo, cancel, recorder.as_mut())
        }
        "urban-cluster" => {
            drive(spec, entry, &mut scenario, ClusterRouting::new(), cancel, recorder.as_mut())
        }
        "highway-mozo" => {
            drive(spec, entry, &mut scenario, MozoRouting::new(), cancel, recorder.as_mut())
        }
        other => unreachable!("catalog id {other} has no protocol mapping"),
    }?;
    Ok(finish(stats_json, recorder))
}

fn drive<P: RoutingProtocol>(
    spec: &JobSpec,
    entry: &ScenarioEntry,
    scenario: &mut Scenario,
    protocol: P,
    cancel: Option<&AtomicBool>,
    mut rec: Option<&mut Recorder>,
) -> Result<Json, JobError> {
    let mut sim = NetSim::new(scenario, protocol);
    sim.send_random_pairs_obs(entry.packets, 256, reborrow(&mut rec));
    let mut remaining = spec.ticks;
    while remaining > 0 {
        let step = remaining.min(CHECK_EVERY_ROUNDS);
        sim.run_rounds_obs(step as usize, reborrow(&mut rec));
        remaining -= step;
        let used = sim.heap_bytes() + sim.scenario_mut().fleet.mem_bytes();
        if used > MEM_BUDGET_BYTES {
            return Err(JobError::BudgetExceeded { used, budget: MEM_BUDGET_BYTES });
        }
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Err(JobError::Cancelled);
        }
    }
    let heap = sim.heap_bytes() + sim.scenario_mut().fleet.mem_bytes();
    let stats = sim.into_stats();
    Ok(Json::object::<&str>(vec![
        ("scenario", Json::from(spec.scenario.as_str())),
        ("seed", Json::from(spec.seed)),
        ("ticks", Json::from(spec.ticks)),
        ("flags", Json::from(spec.flags)),
        ("sent", Json::from(stats.sent)),
        ("delivered", Json::from(stats.delivered)),
        ("transmissions", Json::from(stats.transmissions)),
        ("delivery_ratio", Json::from(stats.delivery_ratio())),
        ("mean_latency_s", Json::from(stats.mean_latency_s())),
        ("mean_hops", Json::from(stats.mean_hops())),
        ("overhead_per_delivery", Json::from(stats.overhead_per_delivery())),
        ("heap_bytes", Json::from(heap)),
    ]))
}

fn finish(stats_json: Json, recorder: Option<Recorder>) -> JobOutput {
    let mut stats = stats_json.to_string_pretty().into_bytes();
    stats.push(b'\n');
    let mut trace = Vec::new();
    if let Some(rec) = recorder {
        rec.write_jsonl(&mut trace).expect("Vec<u8> write cannot fail");
    }
    let checksum = fnv1a64(&[&stats, &trace]);
    JobOutput { stats, trace, checksum }
}
