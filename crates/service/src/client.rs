//! A blocking client for the `vcloudd` wire protocol.
//!
//! One [`Client`] wraps one TCP connection; requests and responses are
//! strictly ordered on it, so a client is single-threaded by design —
//! `vcload` opens one per client thread.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use vc_net::svc::{read_decode, write_frame, Channel, Frame, JobPhase, JobTimes, RejectReason};

use crate::job::JobSpec;

/// A fetched RESULT: terminal phase, payload, and server timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id.
    pub job: u64,
    /// Terminal phase.
    pub phase: JobPhase,
    /// FNV-1a checksum the server computed over stats then trace.
    pub checksum: u64,
    /// Stats JSON bytes.
    pub stats: Vec<u8>,
    /// Trace JSONL bytes (empty unless the job requested tracing).
    pub trace: Vec<u8>,
    /// Failure detail (non-empty only for failed jobs).
    pub detail: String,
    /// Server-relative lifecycle timestamps.
    pub times: JobTimes,
}

/// One connection to a `vcloudd`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn bad_reply(what: &'static str, got: &Frame) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("expected {what}, got {got:?}"))
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Frame> {
        read_decode(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Submits a job; `Ok(job_id)` on admission, `Err` with the server's
    /// rejection on backpressure/validation failure.
    #[allow(clippy::result_large_err)]
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Result<u64, (RejectReason, String)>> {
        self.send(&Frame::Submit {
            scenario: spec.scenario.clone(),
            seed: spec.seed,
            ticks: spec.ticks,
            flags: spec.flags,
        })?;
        match self.recv()? {
            Frame::Accepted { job } => Ok(Ok(job)),
            Frame::Rejected { reason, detail } => Ok(Err((reason, detail))),
            other => Err(bad_reply("Accepted/Rejected", &other)),
        }
    }

    /// Queries a job's lifecycle state.
    pub fn status(&mut self, job: u64) -> io::Result<(JobPhase, u32, JobTimes)> {
        self.send(&Frame::Status { job })?;
        match self.recv()? {
            Frame::JobStatus { phase, queue_depth, times, .. } => Ok((phase, queue_depth, times)),
            Frame::Error { detail } => Err(io::Error::new(io::ErrorKind::NotFound, detail)),
            other => Err(bad_reply("JobStatus", &other)),
        }
    }

    /// Blocks until the job is terminal and streams its result back,
    /// reassembling the chunked stats/trace channels and verifying the
    /// declared lengths and checksum.
    pub fn fetch_result(&mut self, job: u64) -> io::Result<JobResult> {
        self.send(&Frame::Result { job })?;
        let (phase, checksum, stats_len, trace_len, times) = match self.recv()? {
            Frame::ResultHeader { job: j, phase, checksum, stats_len, trace_len, times }
                if j == job =>
            {
                (phase, checksum, stats_len, trace_len, times)
            }
            Frame::Error { detail } => return Err(io::Error::new(io::ErrorKind::NotFound, detail)),
            other => return Err(bad_reply("ResultHeader", &other)),
        };
        let mut stats = Vec::new();
        let mut trace = Vec::new();
        let mut detail = String::new();
        loop {
            match self.recv()? {
                Frame::Chunk { channel, data, .. } => match channel {
                    Channel::Stats => stats.extend_from_slice(&data),
                    Channel::Trace => trace.extend_from_slice(&data),
                },
                // Failure detail rides inside the stream for failed jobs.
                Frame::Error { detail: d } => detail = d,
                Frame::ResultEnd { job: j } if j == job => break,
                other => return Err(bad_reply("Chunk/ResultEnd", &other)),
            }
        }
        if stats.len() as u64 != stats_len || trace.len() as u64 != trace_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "result length mismatch: stats {}/{stats_len}, trace {}/{trace_len}",
                    stats.len(),
                    trace.len()
                ),
            ));
        }
        let computed = vc_net::svc::fnv1a64(&[&stats, &trace]);
        if computed != checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("result checksum mismatch: {computed:#x} != {checksum:#x}"),
            ));
        }
        Ok(JobResult { job, phase, checksum, stats, trace, detail, times })
    }

    /// Requests cancellation of a job.
    pub fn cancel(&mut self, job: u64) -> io::Result<()> {
        self.send(&Frame::Cancel { job })?;
        match self.recv()? {
            Frame::Okay => Ok(()),
            Frame::Error { detail } => Err(io::Error::new(io::ErrorKind::NotFound, detail)),
            other => Err(bad_reply("Okay", &other)),
        }
    }

    /// Fetches the daemon's `svc.*` metrics registry as JSON.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(&Frame::Metrics)?;
        match self.recv()? {
            Frame::MetricsReply { json } => Ok(json),
            other => Err(bad_reply("MetricsReply", &other)),
        }
    }

    /// Asks the daemon to drain and shut down; returns once the server
    /// acknowledged (i.e. every admitted job reached a terminal state).
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Okay => Ok(()),
            other => Err(bad_reply("Okay", &other)),
        }
    }
}
