//! Job lifecycle management: a bounded worker pool over a bounded queue.
//!
//! The supervisor is the multi-tenant heart of `vcloudd`. It owns every
//! job's lifecycle record (queued → running → done/failed/cancelled),
//! admits or rejects SUBMITs with explicit backpressure, hands jobs to a
//! fixed pool of `std::thread` workers, and keeps the `svc.*` metrics
//! registry. Determinism note: workers call [`crate::job::run_job`] with
//! nothing but the spec and a cancel flag — concurrency here can reorder
//! *when* results appear, never *what* they contain.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use vc_net::svc::{JobPhase, JobTimes, RejectReason};
use vc_obs::MetricsHub;

use crate::job::{run_job, JobError, JobOutput, JobSpec};

/// Worker-pool and admission-control knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting in the queue before SUBMITs are rejected
    /// with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { workers: 4, queue_cap: 64 }
    }
}

/// A finished job's payload as held by the supervisor.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The job ran to completion.
    Done(JobOutput),
    /// The job failed (budget, internal error); human-readable detail.
    Failed(String),
    /// The job was cancelled before or during execution.
    Cancelled,
}

/// Everything a RESULT response needs about a terminal job.
#[derive(Debug, Clone)]
pub struct Finished {
    /// Terminal phase ([`JobPhase::Done`] / Failed / Cancelled).
    pub phase: JobPhase,
    /// The deterministic payload (empty stats/trace unless `Done`).
    pub output: JobOutput,
    /// Failure detail when `phase` is `Failed` (empty otherwise).
    pub detail: String,
    /// Lifecycle timestamps.
    pub times: JobTimes,
}

struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    cancel: Arc<AtomicBool>,
    times: JobTimes,
    outcome: Option<Outcome>,
}

struct State {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    queue_cap: usize,
    draining: bool,
    running: usize,
    hub: MetricsHub,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    epoch: Instant,
}

/// The bounded worker pool plus the job table. Cheap to share: handler
/// threads clone the inner [`Arc`] via [`Supervisor::handle`].
pub struct Supervisor {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A shareable reference to a running supervisor (what connection
/// handlers hold).
#[derive(Clone)]
pub struct SupervisorHandle {
    inner: Arc<Inner>,
}

impl Supervisor {
    /// Starts `config.workers` worker threads over an empty queue.
    pub fn start(config: SupervisorConfig) -> Supervisor {
        let workers_n = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                next_id: 1,
                queue_cap: config.queue_cap.max(1),
                draining: false,
                running: 0,
                hub: MetricsHub::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            epoch: Instant::now(),
        });
        {
            let mut st = inner.state.lock().unwrap();
            st.hub.gauge_set("svc.workers", workers_n as f64);
            st.hub.gauge_set("svc.queue.cap", config.queue_cap as f64);
        }
        let workers = (0..workers_n)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Supervisor { inner, workers }
    }

    /// Returns a shareable handle for connection handlers.
    pub fn handle(&self) -> SupervisorHandle {
        SupervisorHandle { inner: Arc::clone(&self.inner) }
    }

    /// Stops admitting jobs, lets the queue and running jobs finish, and
    /// joins the workers. Returns once every admitted job is terminal.
    pub fn drain(mut self) {
        self.handle().begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl SupervisorHandle {
    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Admits a job or rejects it with backpressure. On admission the job
    /// is queued and its id returned; the `svc.submit` / `svc.accept` /
    /// `svc.reject` counters and `svc.queue.depth` gauge track the
    /// decision.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, (RejectReason, String)> {
        let mut st = self.inner.state.lock().unwrap();
        st.hub.counter_add("svc.submit", 1);
        let reject = |st: &mut State, reason: RejectReason, detail: String| {
            st.hub.counter_add("svc.reject", 1);
            Err((reason, detail))
        };
        if st.draining {
            return reject(&mut st, RejectReason::Draining, "service is draining".into());
        }
        if let Err(e) = spec.validate() {
            let reason = match e {
                JobError::UnknownScenario(_) => RejectReason::UnknownScenario,
                _ => RejectReason::BadRequest,
            };
            return reject(&mut st, reason, e.to_string());
        }
        if st.queue.len() >= st.queue_cap {
            let cap = st.queue_cap;
            return reject(
                &mut st,
                RejectReason::QueueFull,
                format!("queue full ({cap} jobs waiting)"),
            );
        }
        let id = st.next_id;
        st.next_id += 1;
        let times = JobTimes { accepted_ns: self.now_ns(), ..JobTimes::default() };
        st.jobs.insert(
            id,
            JobRecord {
                spec,
                phase: JobPhase::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                times,
                outcome: None,
            },
        );
        st.queue.push_back(id);
        st.hub.counter_add("svc.accept", 1);
        let depth = st.queue.len() as f64;
        st.hub.gauge_set("svc.queue.depth", depth);
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Reports a job's phase, queue position, and timestamps.
    pub fn status(&self, job: u64) -> Option<(JobPhase, u32, JobTimes)> {
        let st = self.inner.state.lock().unwrap();
        let rec = st.jobs.get(&job)?;
        let ahead = st.queue.iter().take_while(|&&id| id != job).count() as u32;
        let depth = if rec.phase == JobPhase::Queued { ahead } else { 0 };
        Some((rec.phase, depth, rec.times))
    }

    /// Requests cancellation. A queued job is cancelled immediately; a
    /// running job observes the flag at its next check and stops. Returns
    /// `false` for unknown job ids.
    pub fn cancel(&self, job: u64) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let now = self.now_ns();
        let Some(rec) = st.jobs.get_mut(&job) else { return false };
        rec.cancel.store(true, Ordering::Relaxed);
        if rec.phase == JobPhase::Queued {
            rec.phase = JobPhase::Cancelled;
            rec.times.finished_ns = now;
            rec.outcome = Some(Outcome::Cancelled);
            st.queue.retain(|&id| id != job);
            st.hub.counter_add("svc.cancel", 1);
            let depth = st.queue.len() as f64;
            st.hub.gauge_set("svc.queue.depth", depth);
            drop(st);
            self.inner.done_cv.notify_all();
        }
        true
    }

    /// Blocks until the job is terminal and returns its result. `None`
    /// for unknown job ids.
    pub fn wait_result(&self, job: u64) -> Option<Finished> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let rec = st.jobs.get(&job)?;
            if rec.phase.is_terminal() {
                let (phase, times) = (rec.phase, rec.times);
                let (output, detail) = match rec.outcome.clone() {
                    Some(Outcome::Done(out)) => (out, String::new()),
                    Some(Outcome::Failed(why)) => (empty_output(), why),
                    Some(Outcome::Cancelled) | None => (empty_output(), String::new()),
                };
                return Some(Finished { phase, output, detail, times });
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Renders the `svc.*` metrics registry as compact JSON.
    pub fn metrics_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        st.hub.snapshot().to_json().to_string_compact()
    }

    /// Stops admission and blocks until the queue is empty and no job is
    /// running. Does not join the workers (only [`Supervisor::drain`]
    /// can, since it owns the handles) — but on return every admitted job
    /// is terminal, which is the contract SHUTDOWN acknowledges.
    pub fn begin_drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.draining = true;
        self.inner.work_cv.notify_all();
        while !st.queue.is_empty() || st.running > 0 {
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Whether drain has begun.
    pub fn draining(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }
}

fn empty_output() -> JobOutput {
    // Checksum of the (empty) payload, so clients can verify every
    // result stream the same way regardless of terminal phase.
    JobOutput { stats: Vec::new(), trace: Vec::new(), checksum: vc_net::svc::fnv1a64(&[]) }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim the next job (or exit if draining with nothing left).
        let (id, spec, cancel) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    let depth = st.queue.len() as f64;
                    st.hub.gauge_set("svc.queue.depth", depth);
                    let now = inner.epoch.elapsed().as_nanos() as u64;
                    let rec = st.jobs.get_mut(&id).expect("queued job has a record");
                    rec.phase = JobPhase::Running;
                    rec.times.started_ns = now;
                    let queue_us = (now - rec.times.accepted_ns) as f64 / 1_000.0;
                    let (spec, cancel) = (rec.spec.clone(), Arc::clone(&rec.cancel));
                    st.hub.observe("svc.job.queue_us", queue_us);
                    st.running += 1;
                    break (id, spec, cancel);
                }
                if st.draining {
                    return;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };

        // Run without the lock; the job sees only its spec + cancel flag.
        let result = run_job(&spec, Some(&cancel));

        let mut st = inner.state.lock().unwrap();
        let now = inner.epoch.elapsed().as_nanos() as u64;
        st.running -= 1;
        let rec = st.jobs.get_mut(&id).expect("running job has a record");
        rec.times.finished_ns = now;
        let run_us = (now - rec.times.started_ns) as f64 / 1_000.0;
        let (phase, outcome, counter) = match result {
            Ok(out) => (JobPhase::Done, Outcome::Done(out), "svc.done"),
            Err(JobError::Cancelled) => (JobPhase::Cancelled, Outcome::Cancelled, "svc.cancel"),
            Err(e) => (JobPhase::Failed, Outcome::Failed(e.to_string()), "svc.fail"),
        };
        rec.phase = phase;
        rec.outcome = Some(outcome);
        st.hub.counter_add(counter, 1);
        st.hub.observe("svc.job.run_us", run_us);
        drop(st);
        inner.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_net::svc::FLAG_TRACE;

    fn spec(scenario: &str, seed: u64, ticks: u32, flags: u32) -> JobSpec {
        JobSpec { scenario: scenario.into(), seed, ticks, flags }
    }

    #[test]
    fn submit_run_and_fetch_matches_run_job() {
        let sup = Supervisor::start(SupervisorConfig { workers: 2, queue_cap: 8 });
        let h = sup.handle();
        let s = spec("urban-epidemic", 11, 48, FLAG_TRACE);
        let id = h.submit(s.clone()).unwrap();
        let fin = h.wait_result(id).unwrap();
        assert_eq!(fin.phase, JobPhase::Done);
        let reference = run_job(&s, None).unwrap();
        assert_eq!(fin.output, reference);
        assert!(fin.times.accepted_ns <= fin.times.started_ns);
        assert!(fin.times.started_ns <= fin.times.finished_ns);
        sup.drain();
    }

    #[test]
    fn unknown_scenario_and_bad_ticks_are_rejected() {
        let sup = Supervisor::start(SupervisorConfig { workers: 1, queue_cap: 8 });
        let h = sup.handle();
        let (reason, _) = h.submit(spec("no-such", 1, 10, 0)).unwrap_err();
        assert_eq!(reason, RejectReason::UnknownScenario);
        let (reason, _) = h.submit(spec("urban-epidemic", 1, 0, 0)).unwrap_err();
        assert_eq!(reason, RejectReason::BadRequest);
        let (reason, _) = h.submit(spec("urban-epidemic", 1, 10, 0xffff_0000)).unwrap_err();
        assert_eq!(reason, RejectReason::BadRequest);
        sup.drain();
    }

    #[test]
    fn queue_overflow_rejects_with_queue_full() {
        let sup = Supervisor::start(SupervisorConfig { workers: 1, queue_cap: 2 });
        let h = sup.handle();
        // Long jobs so the queue stays occupied while we overflow it.
        let mut accepted = Vec::new();
        let mut saw_full = false;
        for i in 0..24 {
            match h.submit(spec("urban-epidemic", i, 400, 0)) {
                Ok(id) => accepted.push(id),
                Err((reason, _)) => {
                    assert_eq!(reason, RejectReason::QueueFull);
                    saw_full = true;
                }
            }
        }
        assert!(saw_full, "24 fast submits into a 2-slot queue must overflow");
        for id in accepted {
            let fin = h.wait_result(id).unwrap();
            assert_eq!(fin.phase, JobPhase::Done);
        }
        sup.drain();
    }

    #[test]
    fn cancel_queued_and_running_jobs() {
        let sup = Supervisor::start(SupervisorConfig { workers: 1, queue_cap: 8 });
        let h = sup.handle();
        // Occupy the single worker, then cancel a queued job behind it.
        let long = h.submit(spec("urban-epidemic", 1, 2_000, 0)).unwrap();
        let queued = h.submit(spec("urban-greedy", 2, 2_000, 0)).unwrap();
        assert!(h.cancel(queued));
        let fin = h.wait_result(queued).unwrap();
        assert_eq!(fin.phase, JobPhase::Cancelled);
        assert!(fin.output.stats.is_empty());
        // Cancel the running one too; it stops at a cancel check.
        assert!(h.cancel(long));
        let fin = h.wait_result(long).unwrap();
        assert_eq!(fin.phase, JobPhase::Cancelled);
        assert!(!h.cancel(9999), "unknown job id");
        sup.drain();
    }

    #[test]
    fn drain_finishes_queued_work_then_rejects() {
        let sup = Supervisor::start(SupervisorConfig { workers: 2, queue_cap: 16 });
        let h = sup.handle();
        let ids: Vec<u64> =
            (0..6).map(|i| h.submit(spec("urban-cluster", i, 64, 0)).unwrap()).collect();
        sup.drain();
        for id in ids {
            let fin = h.wait_result(id).unwrap();
            assert_eq!(fin.phase, JobPhase::Done, "drained job must have completed");
        }
        let (reason, _) = h.submit(spec("urban-epidemic", 9, 10, 0)).unwrap_err();
        assert_eq!(reason, RejectReason::Draining);
    }

    #[test]
    fn metrics_register_lifecycle_counters() {
        let sup = Supervisor::start(SupervisorConfig { workers: 1, queue_cap: 4 });
        let h = sup.handle();
        let id = h.submit(spec("canyon-greedy", 3, 32, 0)).unwrap();
        h.wait_result(id).unwrap();
        let json = h.metrics_json();
        for key in ["svc.submit", "svc.accept", "svc.done", "svc.job.queue_us", "svc.job.run_us"] {
            assert!(json.contains(key), "metrics JSON missing {key}: {json}");
        }
        sup.drain();
    }
}
