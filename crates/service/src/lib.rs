//! # vc-service — the simulator as a long-lived multi-tenant scenario service
//!
//! The paper's vehicular cloud is not a batch job: it is infrastructure
//! that *stays up* while many tenants submit work. This crate packages the
//! workspace's deterministic simulation core behind that operational shape:
//!
//! * [`job`] — the scenario catalog and the single deterministic job
//!   runner shared by every entry point (daemon workers, the in-process
//!   `experiments --job` mode, and tests).
//! * [`supervisor`] — a bounded [`std::thread`] worker pool with explicit
//!   job lifecycle (queued → running → done/failed/cancelled),
//!   reject-with-backpressure admission, per-job observability state, and
//!   graceful drain.
//! * [`server`] — the `vcloudd` TCP daemon: length-prefixed
//!   [`vc_net::svc`] frames over loopback, one handler thread per
//!   connection, results streamed in chunks.
//! * [`client`] — a blocking client for the wire protocol.
//! * [`loadgen`] — the `vcload` open/closed-loop load generator with
//!   latency histograms ([`vc_obs::Quantiles`]) and a
//!   deterministic-schema JSON report.
//!
//! ## The determinism contract
//!
//! A job's RESULT payload — stats JSON, trace bytes (when requested), and
//! the FNV-1a checksum over both — is **byte-identical** to running the
//! same `(scenario, seed, ticks, flags)` in-process via [`job::run_job`],
//! regardless of concurrent load, worker-pool size, submission order, or
//! `VC_SHARDS`. Tenants never share observability state: each job gets its
//! own [`vc_obs::Recorder`]; only wall-clock [`vc_net::svc::JobTimes`]
//! (never part of the checksum) reflect what else the daemon was doing.
//!
//! ```
//! use vc_service::job::{run_job, JobSpec};
//!
//! let spec = JobSpec { scenario: "urban-epidemic".into(), seed: 7, ticks: 40, flags: 0 };
//! let a = run_job(&spec, None).unwrap();
//! let b = run_job(&spec, None).unwrap();
//! assert_eq!(a.checksum, b.checksum);
//! assert_eq!(a.stats, b.stats);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod job;
pub mod loadgen;
pub mod server;
pub mod supervisor;

pub use client::{Client, JobResult};
pub use job::{run_job, JobError, JobOutput, JobSpec};
pub use server::{Server, ServerConfig};
pub use supervisor::{Supervisor, SupervisorConfig};
