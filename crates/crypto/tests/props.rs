//! Property-based tests for the cryptographic substrate.

use vc_crypto::chacha20::{decrypt, encrypt, open, seal};
use vc_crypto::group::{Element, Scalar};
use vc_crypto::hex;
use vc_crypto::hmac::{hkdf_expand, hkdf_extract, hmac_sha256};
use vc_crypto::merkle::MerkleTree;
use vc_crypto::schnorr::{Signature, SigningKey};
use vc_crypto::sha256::sha256;
use vc_crypto::u256::U256;
use vc_testkit::prop::strategy::{any_bytes, any_u16, any_u64, any_u8, any_words, vec};
use vc_testkit::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

prop! {
    #![cases(64)]

    // ---- U256 ring axioms against the u128 oracle ----

    #[test]
    fn u256_add_matches_u128(a in any_u64(), b in any_u64()) {
        let sum = U256::from(a as u128).wrapping_add(U256::from(b as u128));
        prop_assert_eq!(sum, U256::from(a as u128 + b as u128));
    }

    #[test]
    fn u256_mul_matches_u128(a in any_u64(), b in any_u64()) {
        let wide = U256::from(a as u128).mul_wide(U256::from(b as u128));
        let expect = a as u128 * b as u128;
        let lo = wide.limbs()[0] as u128 | ((wide.limbs()[1] as u128) << 64);
        prop_assert_eq!(lo, expect);
        prop_assert_eq!(wide.limbs()[2], 0);
    }

    #[test]
    fn u256_add_commutes(a in any_words::<4>(), b in any_words::<4>()) {
        let x = U256::from_limbs(a);
        let y = U256::from_limbs(b);
        prop_assert_eq!(x.wrapping_add(y), y.wrapping_add(x));
    }

    #[test]
    fn u256_sub_inverts_add(a in any_words::<4>(), b in any_words::<4>()) {
        let x = U256::from_limbs(a);
        let y = U256::from_limbs(b);
        prop_assert_eq!(x.wrapping_add(y).wrapping_sub(y), x);
    }

    #[test]
    fn u256_div_rem_reconstructs(a in any_words::<4>(), b in any_words::<2>()) {
        let x = U256::from_limbs(a);
        let d = U256::from_limbs([b[0], b[1], 0, 0]);
        prop_assume!(!d.is_zero());
        let (q, r) = x.div_rem(d);
        prop_assert!(r < d);
        // x == q*d + r (verify via wide mul low half + add)
        let qd = q.mul_wide(d);
        let back = U256::from_limbs([qd.limbs()[0], qd.limbs()[1], qd.limbs()[2], qd.limbs()[3]])
            .wrapping_add(r);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn u256_bytes_roundtrip(a in any_words::<4>()) {
        let x = U256::from_limbs(a);
        prop_assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
        prop_assert_eq!(U256::from_hex(&x.to_hex()).unwrap(), x);
    }

    #[test]
    fn u256_shifts_invert(a in any_words::<4>(), n in 0usize..255) {
        let x = U256::from_limbs(a);
        prop_assert_eq!(x.shl_bits(n).shr_bits(n).shl_bits(n), x.shl_bits(n));
    }

    // ---- windowed exponentiation vs the square-and-multiply oracle ----

    #[test]
    fn pow_mod_windowed_matches_reference(base in any_words::<4>(), exp in any_words::<4>()) {
        let p = vc_crypto::group::group().p;
        let b = U256::from_limbs(base);
        let e = U256::from_limbs(exp);
        prop_assert_eq!(b.pow_mod_windowed(e, p), b.pow_mod(e, p));
        // Also against a small modulus where the u128 oracle reaches.
        let m = U256::from(1_000_000_007u128);
        prop_assert_eq!(b.pow_mod_windowed(e, m), b.pow_mod(e, m));
    }

    #[test]
    fn base_pow_table_matches_reference(seed in any_bytes::<16>()) {
        let e = Scalar::hash_to_scalar(&[b"prop-basepow", &seed]);
        prop_assert_eq!(Element::base_pow(e), Element::base_pow_scalar(e));
    }

    #[test]
    fn multi_exp_windowed_matches_binary(count in 1usize..6, seed in any_bytes::<8>(),
                                         short in any_u64()) {
        let mut bases = Vec::new();
        let mut exps = Vec::new();
        for i in 0..count {
            bases.push(Element::base_pow(Scalar::hash_to_scalar(&[b"b", &seed, &[i as u8]])));
            exps.push(Scalar::hash_to_scalar(&[b"e", &seed, &[i as u8]]));
        }
        // Mix in a short exponent (batch weights are 128-bit).
        exps[0] = Scalar::from_u64(short);
        prop_assert_eq!(
            vc_crypto::group::multi_exp(&bases, &exps),
            vc_crypto::group::multi_exp_binary(&bases, &exps)
        );
    }

    // ---- group / scalar laws ----

    #[test]
    fn scalar_add_sub_roundtrip(a in any_u64(), b in any_u64()) {
        let x = Scalar::from_u64(a);
        let y = Scalar::from_u64(b);
        prop_assert_eq!(x.add(y).sub(y), x);
    }

    #[test]
    fn group_exponent_homomorphism(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let lhs = Element::base_pow(Scalar::from_u64(a)).mul(Element::base_pow(Scalar::from_u64(b)));
        let rhs = Element::base_pow(Scalar::from_u64(a).add(Scalar::from_u64(b)));
        prop_assert_eq!(lhs, rhs);
    }

    // ---- hashes and MACs ----

    #[test]
    fn sha256_deterministic_and_sensitive(data in vec(any_u8(), 0..512), flip in any_u8()) {
        let d1 = sha256(&data);
        prop_assert_eq!(d1, sha256(&data));
        if !data.is_empty() {
            let mut tampered = data.clone();
            let idx = flip as usize % tampered.len();
            tampered[idx] ^= 1;
            prop_assert_ne!(d1, sha256(&tampered));
        }
    }

    #[test]
    fn hmac_distinguishes_keys(key1 in vec(any_u8(), 1..64),
                               key2 in vec(any_u8(), 1..64),
                               msg in vec(any_u8(), 0..128)) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(hmac_sha256(&key1, &msg), hmac_sha256(&key2, &msg));
    }

    #[test]
    fn hkdf_prefix_stability(ikm in vec(any_u8(), 1..64), short in 1usize..32, long in 33usize..96) {
        let prk = hkdf_extract(b"salt", &ikm);
        let a = hkdf_expand(&prk, b"ctx", short);
        let b = hkdf_expand(&prk, b"ctx", long);
        prop_assert_eq!(&b[..short], &a[..]);
    }

    #[test]
    fn hex_roundtrip(data in vec(any_u8(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    // ---- cipher ----

    #[test]
    fn chacha_roundtrip(key in any_bytes::<32>(), nonce in any_bytes::<12>(),
                        msg in vec(any_u8(), 0..300)) {
        prop_assert_eq!(decrypt(&key, &nonce, &encrypt(&key, &nonce, &msg)), msg);
    }

    #[test]
    fn sealed_tamper_always_detected(key in any_bytes::<32>(), nonce in any_bytes::<12>(),
                                     msg in vec(any_u8(), 0..128),
                                     pos in any_u16(), bit in 0u8..8) {
        let sealed = seal(&key, &nonce, &msg);
        let mut tampered = sealed.clone();
        let idx = pos as usize % tampered.len();
        tampered[idx] ^= 1 << bit;
        prop_assert_eq!(open(&key, &nonce, &tampered), None);
        prop_assert_eq!(open(&key, &nonce, &sealed).unwrap(), msg);
    }

    // ---- signatures ----

    #[test]
    fn schnorr_roundtrip_and_tamper(seed in vec(any_u8(), 1..32),
                                    msg in vec(any_u8(), 0..128),
                                    flip in any_u8()) {
        let sk = SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig));
        // The square-and-multiply reference path decides identically.
        prop_assert!(sk.verifying_key().verify_scalar(&msg, &sig));
        let mut bytes = sig.to_bytes();
        // Flip a bit in the response half (commitment flips may fail to parse).
        bytes[32 + (flip as usize % 32)] ^= 1;
        if let Some(bad) = Signature::from_bytes(&bytes) {
            prop_assert!(!sk.verifying_key().verify(&msg, &bad));
            prop_assert!(!sk.verifying_key().verify_scalar(&msg, &bad));
        }
    }

    // Batch verification is equivalent to sequential verification: an
    // all-valid batch passes, and with exactly one forged signature the
    // batch fails and attributes precisely that index.
    #[test]
    fn batch_verify_equivalent_to_sequential(count in 1usize..10, culprit in any_u8(),
                                             tamper in any_u8()) {
        let items: Vec<(Vec<u8>, vc_crypto::schnorr::VerifyingKey, vc_crypto::schnorr::Signature)> =
            (0..count)
                .map(|i| {
                    let sk = SigningKey::from_seed(&[i as u8, 0xB, 0xC]);
                    let msg = vec![i as u8; 1 + i];
                    let sig = sk.sign(&msg);
                    (msg, sk.verifying_key(), sig)
                })
                .collect();
        let refs: Vec<(&[u8], _, _)> =
            items.iter().map(|(m, k, s)| (m.as_slice(), *k, *s)).collect();
        prop_assert_eq!(vc_crypto::schnorr::verify_batch(&refs, b"prop"), Ok(()));
        // Forge exactly one signature (bump response or flip a payload byte).
        let mut forged = items.clone();
        let idx = culprit as usize % count;
        if tamper & 1 == 0 {
            forged[idx].2.response = forged[idx].2.response.add(Scalar::one());
        } else {
            forged[idx].0[0] ^= 1;
        }
        let refs: Vec<(&[u8], _, _)> =
            forged.iter().map(|(m, k, s)| (m.as_slice(), *k, *s)).collect();
        prop_assert_eq!(vc_crypto::schnorr::verify_batch(&refs, b"prop"), Err(vec![idx]));
        // Sequential ground truth agrees item by item.
        for (i, (m, k, s)) in refs.iter().enumerate() {
            prop_assert_eq!(k.verify(m, s), i != idx);
        }
    }

    // ---- merkle ----

    #[test]
    fn merkle_proofs_sound(leaves in vec(vec(any_u8(), 0..32), 1..24),
                           probe in any_u8()) {
        let tree = MerkleTree::from_leaves(&leaves);
        let idx = probe as usize % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[idx]));
        // Wrong data never verifies.
        let mut wrong = leaves[idx].clone();
        wrong.push(0xFF);
        prop_assert!(!proof.verify(&tree.root(), &wrong));
    }
}
