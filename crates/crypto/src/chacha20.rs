//! The ChaCha20 stream cipher (RFC 8439), from scratch.
//!
//! Used for payload confidentiality in data-policy packages and encrypted
//! task handover. Verified against the RFC quarter-round and block vectors.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// ChaCha20 keystream generator / XOR cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance for a key, nonce, and initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// Produces the 64-byte keystream block for the current counter and
    /// advances the counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (byte, k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }
}

/// One-shot encryption: returns the ciphertext of `plaintext`.
///
/// ```
/// use vc_crypto::chacha20::{encrypt, decrypt};
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let ct = encrypt(&key, &nonce, b"secret payload");
/// assert_eq!(decrypt(&key, &nonce, &ct), b"secret payload");
/// ```
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    ChaCha20::new(key, nonce, 1).apply(&mut out);
    out
}

/// One-shot decryption (ChaCha20 is an involution under the same key/nonce).
pub fn decrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, ciphertext)
}

/// Authenticated encryption: ChaCha20 for confidentiality plus an
/// encrypt-then-MAC HMAC-SHA-256 tag over `nonce || ciphertext`.
///
/// (RFC 8439 pairs ChaCha20 with Poly1305; HMAC is used here since this
/// crate already ships SHA-256 and the experiments only need integrity plus
/// cost realism, not wire compatibility.)
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
    let mut ct = encrypt(key, nonce, plaintext);
    let mut mac = crate::hmac::HmacSha256::new(key);
    mac.update(nonce);
    mac.update(&ct);
    let tag = mac.finalize();
    ct.extend_from_slice(&tag);
    ct
}

/// Opens a sealed message; returns `None` when the tag does not verify.
pub fn open(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 32 {
        return None;
    }
    let (ct, tag) = sealed.split_at(sealed.len() - 32);
    let mut mac = crate::hmac::HmacSha256::new(key);
    mac.update(nonce);
    mac.update(ct);
    let expected = mac.finalize();
    let mut provided = [0u8; 32];
    provided.copy_from_slice(tag);
    if !crate::hmac::verify_tag(&expected, &provided) {
        return None;
    }
    Some(decrypt(key, nonce, ct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        let expected_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_first16);
        let expected_last4: [u8; 4] = [0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[60..], &expected_last4);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0xA5u8; 32];
        let nonce = [0x5Au8; 12];
        for len in [0usize, 1, 63, 64, 65, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = encrypt(&key, &nonce, &msg);
            assert_eq!(ct.len(), len);
            if len > 8 {
                assert_ne!(ct, msg, "ciphertext equals plaintext at len {len}");
            }
            assert_eq!(decrypt(&key, &nonce, &ct), msg, "len {len}");
        }
    }

    #[test]
    fn keystream_differs_by_nonce_and_key() {
        let key = [1u8; 32];
        let n1 = [1u8; 12];
        let n2 = [2u8; 12];
        assert_ne!(encrypt(&key, &n1, b"same message"), encrypt(&key, &n2, b"same message"));
        let key2 = [2u8; 32];
        assert_ne!(encrypt(&key, &n1, b"same message"), encrypt(&key2, &n1, b"same message"));
    }

    #[test]
    fn counter_advances_per_block() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let b0 = c.next_block();
        let b1 = c.next_block();
        assert_ne!(b0, b1);
        // A fresh cipher starting at counter 1 must produce b1 first.
        let mut c2 = ChaCha20::new(&key, &nonce, 1);
        assert_eq!(c2.next_block(), b1);
    }

    #[test]
    fn seal_open_roundtrip_and_tamper_detection() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let sealed = seal(&key, &nonce, b"task state checkpoint");
        assert_eq!(open(&key, &nonce, &sealed).unwrap(), b"task state checkpoint");
        let mut tampered = sealed.clone();
        tampered[0] ^= 1;
        assert_eq!(open(&key, &nonce, &tampered), None);
        let mut cut = sealed.clone();
        cut.truncate(10);
        assert_eq!(open(&key, &nonce, &cut), None);
        let wrong_key = [10u8; 32];
        assert_eq!(open(&wrong_key, &nonce, &sealed), None);
    }

    #[test]
    fn seal_empty_message() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let sealed = seal(&key, &nonce, b"");
        assert_eq!(sealed.len(), 32);
        assert_eq!(open(&key, &nonce, &sealed).unwrap(), Vec::<u8>::new());
    }
}
