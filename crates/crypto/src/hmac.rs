//! HMAC-SHA-256 (RFC 2104) and an HKDF-style key-derivation function
//! (RFC 5869), built on this crate's SHA-256.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// ```
/// use vc_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key` (any length; long keys are hashed).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time equality for 32-byte tags.
///
/// A timing-safe comparison matters even in simulation code: the attack
/// framework measures exactly this kind of oracle.
pub fn verify_tag(expected: &Digest, provided: &Digest) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= expected[i] ^ provided[i];
    }
    diff == 0
}

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Digest {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `out_len` bytes (≤ 255·32) of key material bound to
/// `info`.
///
/// # Panics
///
/// Panics if `out_len > 8160`.
pub fn hkdf_expand(prk: &Digest, info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    out
}

/// Convenience: one-shot HKDF (extract then expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        // key = 0x0b * 20, data = "Hi There"
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        // key = "Jefe", data = "what do ya want for nothing?"
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn long_key_is_hashed_first() {
        // A key longer than the block must hash to the same MAC as its digest.
        let long_key = vec![0x42u8; 100];
        let hashed_key = crate::sha256::sha256(&long_key);
        assert_eq!(hmac_sha256(&long_key, b"m"), hmac_sha256(&hashed_key, b"m"));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn verify_tag_accepts_and_rejects() {
        let t = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t;
        bad[31] ^= 1;
        assert!(!verify_tag(&t, &bad));
    }

    #[test]
    fn hkdf_lengths_and_determinism() {
        let okm1 = hkdf(b"salt", b"secret", b"ctx", 42);
        let okm2 = hkdf(b"salt", b"secret", b"ctx", 42);
        assert_eq!(okm1.len(), 42);
        assert_eq!(okm1, okm2);
        let other = hkdf(b"salt", b"secret", b"other", 42);
        assert_ne!(okm1, other);
    }

    #[test]
    fn hkdf_prefix_property() {
        // Expanding to a longer length keeps the shorter output as prefix.
        let prk = hkdf_extract(b"s", b"ikm");
        let short = hkdf_expand(&prk, b"i", 16);
        let long = hkdf_expand(&prk, b"i", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic]
    fn hkdf_too_long_panics() {
        hkdf_expand(&[0u8; 32], b"", 255 * 32 + 1);
    }
}
