//! Merkle trees over SHA-256 for data integrity in replicated files.
//!
//! The replication manager splits shared files into chunks; hosts prove
//! possession of individual chunks against the tree root without shipping
//! the whole file (paper §III-A's availability/file-replication discussion).

use crate::sha256::{sha256_parts, Digest};

/// Domain-separation prefixes guard against leaf/interior confusion
/// (second-preimage splicing).
const LEAF_PREFIX: &[u8] = b"\x00vc-merkle-leaf";
const NODE_PREFIX: &[u8] = b"\x01vc-merkle-node";

/// Hashes one leaf's content.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_parts(&[LEAF_PREFIX, data])
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_parts(&[NODE_PREFIX, left, right])
}

/// A Merkle tree built over a sequence of leaves.
///
/// Odd nodes are promoted (not duplicated), so the tree commits to the exact
/// leaf count.
///
/// ```
/// use vc_crypto::merkle::MerkleTree;
/// let tree = MerkleTree::from_leaves(&[b"a".as_slice(), b"b", b"c"]);
/// let proof = tree.prove(2).unwrap();
/// assert!(proof.verify(&tree.root(), b"c"));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Total number of leaves in the tree.
    pub leaf_count: usize,
    /// Sibling hashes from leaf level upward, with the side each sits on.
    pub path: Vec<(Digest, Side)>,
}

/// Which side a sibling hash is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left child; proven node is right.
    Left,
    /// Sibling is the right child; proven node is left.
    Right,
}

impl MerkleTree {
    /// Builds a tree over the given leaf contents.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty — an empty commitment is meaningless.
    pub fn from_leaves<T: AsRef<[u8]>>(leaves: &[T]) -> MerkleTree {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves.iter().map(|l| leaf_hash(l.as_ref())).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash(&pair[0], &pair[1]));
                } else {
                    // Odd node promoted unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Builds an inclusion proof for leaf `index`, or `None` out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut pos = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = pos ^ 1;
            if sibling < level.len() {
                let side = if sibling < pos { Side::Left } else { Side::Right };
                path.push((level[sibling], side));
            }
            pos /= 2;
        }
        Some(MerkleProof { leaf_index: index, leaf_count: self.leaf_count(), path })
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is the leaf this proof commits to under
    /// `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        let mut hash = leaf_hash(leaf_data);
        for (sibling, side) in &self.path {
            hash = match side {
                Side::Left => node_hash(sibling, &hash),
                Side::Right => node_hash(&hash, sibling),
            };
        }
        &hash == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&[b"only"]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert!(proof.path.is_empty());
        assert!(proof.verify(&tree.root(), b"only"));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_data_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), b"forged chunk"));
    }

    #[test]
    fn proof_does_not_transfer_between_positions() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(3).unwrap();
        // Using leaf 4's data with leaf 3's proof must fail.
        assert!(!proof.verify(&tree.root(), &data[4]));
    }

    #[test]
    fn wrong_root_rejected() {
        let data = leaves(4);
        let tree = MerkleTree::from_leaves(&data);
        let other = MerkleTree::from_leaves(&leaves(5));
        let proof = tree.prove(0).unwrap();
        assert!(!proof.verify(&other.root(), &data[0]));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = MerkleTree::from_leaves(&leaves(6)).root();
        for i in 0..6 {
            let mut data = leaves(6);
            data[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(&data).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn leaf_count_is_committed() {
        // Promoting odd nodes means [a, b] and [a, b, b] differ.
        let two = MerkleTree::from_leaves(&[b"a".as_slice(), b"b"]);
        let three = MerkleTree::from_leaves(&[b"a".as_slice(), b"b", b"b"]);
        assert_ne!(two.root(), three.root());
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(&leaves(3));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf whose content equals a serialized pair of digests must not
        // collide with the interior node of those digests.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(&a);
        concat.extend_from_slice(&b);
        assert_ne!(leaf_hash(&concat), node_hash(&a, &b));
    }

    #[test]
    #[should_panic]
    fn empty_tree_panics() {
        MerkleTree::from_leaves::<&[u8]>(&[]);
    }
}
