//! Hex encoding helpers shared across the workspace.

/// Encodes bytes as lowercase hex.
///
/// ```
/// assert_eq!(vc_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a hex string (case-insensitive); `None` on odd length or invalid
/// digits.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive_decode() {
        assert_eq!(decode("DEad").unwrap(), vec![0xde, 0xad]);
    }

    #[test]
    fn invalid_inputs() {
        assert_eq!(decode("abc"), None, "odd length");
        assert_eq!(decode("zz"), None, "bad digit");
    }
}
