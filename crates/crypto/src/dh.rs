//! Diffie–Hellman key agreement over the crate group, with HKDF key
//! derivation to a ChaCha20 session key.
//!
//! Pairs of vehicles establish session keys through this exchange during
//! v-cloud admission; the derived key then protects task payloads and
//! handover checkpoints.

use crate::group::{Element, Scalar};
use crate::hmac::hkdf;

/// An ephemeral DH secret.
#[derive(Clone, Copy)]
pub struct EphemeralSecret {
    secret: Scalar,
}

impl std::fmt::Debug for EphemeralSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EphemeralSecret(..)")
    }
}

/// A DH public share `g^x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicShare(Element);

/// A derived 32-byte session key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SessionKey(pub [u8; 32]);

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SessionKey(..)")
    }
}

impl EphemeralSecret {
    /// Derives an ephemeral secret from seed bytes (callers supply RNG
    /// output or a transcript-bound seed).
    pub fn from_seed(seed: &[u8]) -> EphemeralSecret {
        let mut secret = Scalar::hash_to_scalar(&[b"vc-dh-ephemeral", seed]);
        if secret.is_zero() {
            secret = Scalar::one();
        }
        EphemeralSecret { secret }
    }

    /// The public share to send to the peer.
    pub fn public_share(&self) -> PublicShare {
        PublicShare(Element::base_pow(self.secret))
    }

    /// Completes the exchange: derives the session key from the peer's
    /// share, bound to a context label so unrelated protocols cannot
    /// confuse keys.
    pub fn agree(&self, peer: &PublicShare, context: &[u8]) -> SessionKey {
        let shared = peer.0.pow(self.secret);
        let okm = hkdf(b"vc-dh-salt", &shared.to_bytes(), context, 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        SessionKey(key)
    }
}

impl PublicShare {
    /// 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }

    /// Decodes and validates a share (subgroup membership enforced, which
    /// blocks small-subgroup confinement attacks).
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<PublicShare> {
        Element::from_bytes(bytes).map(PublicShare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        let alice = EphemeralSecret::from_seed(b"alice seed");
        let bob = EphemeralSecret::from_seed(b"bob seed");
        let k1 = alice.agree(&bob.public_share(), b"ctx");
        let k2 = bob.agree(&alice.public_share(), b"ctx");
        assert_eq!(k1.0, k2.0);
    }

    #[test]
    fn context_separates_keys() {
        let alice = EphemeralSecret::from_seed(b"a");
        let bob = EphemeralSecret::from_seed(b"b");
        let k1 = alice.agree(&bob.public_share(), b"task-transfer");
        let k2 = alice.agree(&bob.public_share(), b"beacon");
        assert_ne!(k1.0, k2.0);
    }

    #[test]
    fn different_peers_different_keys() {
        let alice = EphemeralSecret::from_seed(b"a");
        let bob = EphemeralSecret::from_seed(b"b");
        let carol = EphemeralSecret::from_seed(b"c");
        let kb = alice.agree(&bob.public_share(), b"ctx");
        let kc = alice.agree(&carol.public_share(), b"ctx");
        assert_ne!(kb.0, kc.0);
    }

    #[test]
    fn share_bytes_roundtrip_and_validation() {
        let share = EphemeralSecret::from_seed(b"s").public_share();
        assert_eq!(PublicShare::from_bytes(&share.to_bytes()), Some(share));
        assert_eq!(PublicShare::from_bytes(&[0u8; 32]), None);
    }

    #[test]
    fn session_key_drives_cipher() {
        use crate::chacha20::{open, seal};
        let alice = EphemeralSecret::from_seed(b"a");
        let bob = EphemeralSecret::from_seed(b"b");
        let key = alice.agree(&bob.public_share(), b"payload");
        let nonce = [1u8; 12];
        let sealed = seal(&key.0, &nonce, b"sensor frame");
        let peer_key = bob.agree(&alice.public_share(), b"payload");
        assert_eq!(open(&peer_key.0, &nonce, &sealed).unwrap(), b"sensor frame");
    }

    #[test]
    fn debug_hides_secrets() {
        assert_eq!(format!("{:?}", EphemeralSecret::from_seed(b"x")), "EphemeralSecret(..)");
        assert_eq!(format!("{:?}", SessionKey([0; 32])), "SessionKey(..)");
    }
}
