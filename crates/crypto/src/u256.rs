//! A fixed-width 256-bit unsigned integer with modular arithmetic.
//!
//! This is the arithmetic core under the discrete-log constructions in this
//! crate (Schnorr signatures, Diffie–Hellman). Little-endian `u64` limbs;
//! all operations are constant-size loops (no heap).

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer (four little-endian 64-bit limbs).
///
/// ```
/// use vc_crypto::u256::U256;
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(9);
/// assert_eq!(a.wrapping_add(b), U256::from_u64(16));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    /// Little-endian limbs: `limbs[0]` is least significant.
    limbs: [u64; 4],
}

/// A 512-bit product of two [`U256`] values (eight little-endian limbs).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512 {
    limbs: [u64; 8],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// One.
    pub const ONE: U256 = U256 { limbs: [1, 0, 0, 0] };
    /// The largest representable value.
    pub const MAX: U256 = U256 { limbs: [u64::MAX; 4] };

    /// Creates from a `u64`.
    pub const fn from_u64(x: u64) -> Self {
        U256 { limbs: [x, 0, 0, 0] }
    }

    /// Creates from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Creates from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        #[allow(clippy::needless_range_loop)] // i indexes both arrays
        for i in 0..4 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(word);
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        #[allow(clippy::needless_range_loop)] // i indexes both ends
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.limbs[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses a hex string (with or without `0x`, up to 64 digits).
    ///
    /// Returns `None` on invalid characters or overflow.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut out = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            out = out.shl_bits(4);
            out.limbs[0] |= d;
        }
        Some(out)
    }

    /// Formats as a 64-digit lowercase hex string (no prefix).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for i in (0..4).rev() {
            s.push_str(&format!("{:016x}", self.limbs[i]));
        }
        s
    }

    /// `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// `true` when the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition (mod 2^256); also returns the carry.
    pub fn overflowing_add(&self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        #[allow(clippy::needless_range_loop)] // i indexes three arrays
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping addition (mod 2^256).
    pub fn wrapping_add(&self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (mod 2^256); also returns the borrow.
    pub fn overflowing_sub(&self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        #[allow(clippy::needless_range_loop)] // i indexes three arrays
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Wrapping subtraction (mod 2^256).
    pub fn wrapping_sub(&self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Full 512-bit product.
    pub fn mul_wide(&self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512 { limbs: out }
    }

    /// Left shift by `n` bits (`n < 256`), dropping overflow.
    pub fn shl_bits(&self, n: usize) -> U256 {
        assert!(n < 256);
        if n == 0 {
            return *self;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Right shift by `n` bits (`n < 256`).
    pub fn shr_bits(&self, n: usize) -> U256 {
        assert!(n < 256);
        if n == 0 {
            return *self;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        #[allow(clippy::needless_range_loop)] // i indexes shifted pairs
        for i in 0..4 - limb_shift {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Quotient and remainder of division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if *self < divisor {
            return (U256::ZERO, *self);
        }
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        for i in (0..self.bits()).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder.limbs[0] |= 1;
            }
            if remainder >= divisor {
                remainder = remainder.wrapping_sub(divisor);
                quotient.limbs[i / 64] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: U256) -> U256 {
        self.div_rem(m).1
    }

    /// `(self + rhs) mod m`, assuming both inputs are already `< m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero (debug: or if inputs are not reduced).
    pub fn add_mod(&self, rhs: U256, m: U256) -> U256 {
        debug_assert!(*self < m && rhs < m, "add_mod inputs must be reduced");
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// `(self - rhs) mod m`, assuming both inputs are already `< m`.
    pub fn sub_mod(&self, rhs: U256, m: U256) -> U256 {
        debug_assert!(*self < m && rhs < m, "sub_mod inputs must be reduced");
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(m)
        } else {
            diff
        }
    }

    /// `(self * rhs) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mul_mod(&self, rhs: U256, m: U256) -> U256 {
        self.mul_wide(rhs).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn pow_mod(&self, exp: U256, m: U256) -> U256 {
        assert!(!m.is_zero(), "zero modulus");
        if m == U256::ONE {
            return U256::ZERO;
        }
        let mut base = self.rem(m);
        let mut result = U256::ONE;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul_mod(base, m);
            }
            base = base.mul_mod(base, m);
        }
        result
    }

    /// `self^exp mod m` by fixed-window (k-ary, 4-bit) exponentiation.
    ///
    /// Result-identical to [`U256::pow_mod`] (which is retained as the
    /// reference oracle for the property suite and the `VC_CRYPTO_SCALAR=1`
    /// escape hatch) but processes the exponent a nibble at a time: one
    /// 15-entry power table up front, then four squarings plus at most one
    /// multiply per nibble instead of one multiply per set bit — ~6 fewer
    /// multiplies per 16 exponent bits on random exponents.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn pow_mod_windowed(&self, exp: U256, m: U256) -> U256 {
        assert!(!m.is_zero(), "zero modulus");
        if m == U256::ONE {
            return U256::ZERO;
        }
        let bits = exp.bits();
        if bits == 0 {
            return U256::ONE;
        }
        let base = self.rem(m);
        // table[j] = base^(j+1) mod m.
        let mut table = [base; 15];
        for j in 1..15 {
            table[j] = table[j - 1].mul_mod(base, m);
        }
        let top_window = (bits - 1) / 4;
        let mut result = U256::ONE;
        for w in (0..=top_window).rev() {
            if w != top_window {
                for _ in 0..4 {
                    result = result.mul_mod(result, m);
                }
            }
            let nibble = (exp.limbs[w / 16] >> ((w % 16) * 4)) & 0xF;
            if nibble != 0 {
                result = result.mul_mod(table[nibble as usize - 1], m);
            }
        }
        result
    }

    /// Modular inverse for a **prime** modulus, via Fermat's little theorem.
    ///
    /// Returns `None` when `self ≡ 0 (mod p)`.
    pub fn inv_mod_prime(&self, p: U256) -> Option<U256> {
        if self.rem(p).is_zero() {
            return None;
        }
        let exp = p.wrapping_sub(U256::from_u64(2));
        Some(self.pow_mod(exp, p))
    }
}

impl U512 {
    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 8] {
        self.limbs
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..8).rev() {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 512);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Remainder modulo a 256-bit divisor (bitwise long division).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        let mut remainder = U256::ZERO;
        for i in (0..self.bits()).rev() {
            // remainder = remainder * 2 + bit; remainder stays < 2m < 2^257,
            // so track the shifted-out carry explicitly.
            let carry = remainder.bit(255);
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder.limbs[0] |= 1;
            }
            if carry || remainder >= m {
                remainder = remainder.wrapping_sub(m);
            }
        }
        remainder
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(x: u64) -> Self {
        U256::from_u64(x)
    }
}

impl From<u128> for U256 {
    fn from(x: u128) -> Self {
        U256 { limbs: [x as u64, (x >> 64) as u64, 0, 0] }
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for i in (0..8).rev() {
            write!(f, "{:016x}", self.limbs[i])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(x: u128) -> U256 {
        U256::from(x)
    }

    #[test]
    fn hex_roundtrip() {
        let v =
            U256::from_hex("0xdeadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff")
                .unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff");
        assert_eq!(U256::from_hex("ff").unwrap(), u(255));
        assert_eq!(U256::from_hex(""), None);
        assert_eq!(U256::from_hex("xyz"), None);
        assert_eq!(U256::from_hex(&"f".repeat(65)), None);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
            .unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(bytes[31], 0x20);
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    fn add_sub_with_carries() {
        let a = U256::MAX;
        let (sum, carry) = a.overflowing_add(U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
        let (diff, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::MAX);
        assert_eq!(u(100).wrapping_sub(u(1)), u(99));
    }

    #[test]
    fn mul_wide_against_u128_oracle() {
        let a = 0xdead_beef_u64 as u128;
        let b = 0xcafe_babe_1234_u64 as u128;
        let wide = u(a).mul_wide(u(b));
        let expect = a * b;
        assert_eq!(wide.limbs()[0] as u128 | ((wide.limbs()[1] as u128) << 64), expect);
        assert_eq!(wide.limbs()[2], 0);
    }

    #[test]
    fn mul_wide_max_values() {
        // MAX * MAX = 2^512 - 2^257 + 1
        let wide = U256::MAX.mul_wide(U256::MAX);
        assert_eq!(wide.limbs()[0], 1);
        assert_eq!(wide.limbs()[7], u64::MAX);
        assert_eq!(wide.bits(), 512);
    }

    #[test]
    fn shifts() {
        let v = u(1);
        assert_eq!(v.shl_bits(64), U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(v.shl_bits(255).shr_bits(255), v);
        assert_eq!(v.shl_bits(3), u(8));
        assert_eq!(u(0x80).shr_bits(4), u(8));
        let pattern = U256::from_hex("f0f0f0f0").unwrap();
        assert_eq!(pattern.shl_bits(0), pattern);
        assert_eq!(pattern.shl_bits(100).shr_bits(100), pattern);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(u(0x100).bits(), 9);
        assert_eq!(U256::MAX.bits(), 256);
        assert!(u(5).bit(0));
        assert!(!u(5).bit(1));
        assert!(u(5).bit(2));
    }

    #[test]
    fn div_rem_small_oracle() {
        for (a, b) in [(100u128, 7u128), (1, 1), (0, 5), (12345678901234567890, 97), (u128::MAX, 3)]
        {
            let (q, r) = u(a).div_rem(u(b));
            assert_eq!(q, u(a / b), "quotient {a}/{b}");
            assert_eq!(r, u(a % b), "remainder {a}%{b}");
        }
    }

    #[test]
    fn div_rem_large() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
            .unwrap();
        let b = U256::from_hex("10000000000000001").unwrap();
        let (q, r) = a.div_rem(b);
        // verify a = q*b + r and r < b
        let qb = q.mul_wide(b);
        let back = U256::from_limbs([qb.limbs()[0], qb.limbs()[1], qb.limbs()[2], qb.limbs()[3]])
            .wrapping_add(r);
        assert_eq!(back, a);
        assert!(r < b);
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        u(1).div_rem(U256::ZERO);
    }

    #[test]
    fn mod_arithmetic_oracle() {
        let m = u(1_000_000_007);
        for (a, b) in [(5u128, 7u128), (999_999_999, 999_999_999), (0, 123)] {
            assert_eq!(u(a).add_mod(u(b), m), u((a + b) % 1_000_000_007));
            assert_eq!(u(a).mul_mod(u(b), m), u((a * b) % 1_000_000_007));
        }
        assert_eq!(u(3).sub_mod(u(5), m), u(1_000_000_007 - 2));
    }

    #[test]
    fn u512_rem_oracle() {
        let a = u(u128::MAX);
        let wide = a.mul_wide(a); // (2^128-1)^2
        let m = u(1_000_000_007);
        // (2^128-1)^2 mod p computed via pow: ((2^128-1) mod p)^2 mod p
        let expect = (u128::MAX % 1_000_000_007).pow(2) % 1_000_000_007;
        assert_eq!(wide.rem(m), u(expect));
    }

    #[test]
    fn pow_mod_small_oracle() {
        let m = u(1_000_000_007);
        assert_eq!(u(2).pow_mod(u(10), m), u(1024));
        assert_eq!(u(5).pow_mod(U256::ZERO, m), U256::ONE);
        assert_eq!(u(7).pow_mod(u(1_000_000_006), m), U256::ONE, "Fermat little theorem");
        assert_eq!(u(3).pow_mod(u(4), U256::ONE), U256::ZERO, "mod 1 is zero");
    }

    #[test]
    fn pow_mod_group_known_answer() {
        // Values generated alongside the hardcoded Schnorr group:
        // g=4, p below, 4^5 mod p = 1024 and 4^0x1234567890abcdef is the y below.
        let p = U256::from_hex("a252363211224274024c034527879257e2663936263f2ec0e8818b63737f276b")
            .unwrap();
        assert_eq!(u(4).pow_mod(u(5), p), u(1024));
        let y = U256::from_hex("4c7df5ef507f1eaf801ace29ff42eeff97cbeb8b99dabd0ef07e5c3033122959")
            .unwrap();
        assert_eq!(u(4).pow_mod(u(0x1234567890abcdef), p), y);
    }

    #[test]
    fn pow_mod_windowed_matches_reference() {
        let p = U256::from_hex("a252363211224274024c034527879257e2663936263f2ec0e8818b63737f276b")
            .unwrap();
        let exps = [
            U256::ZERO,
            U256::ONE,
            u(5),
            u(0x1234567890abcdef),
            U256::from_hex("51291b190891213a012601a293c3c92bf1331c9b131f97607440c5b1b9bf93b5")
                .unwrap(),
            U256::MAX,
        ];
        for base in [u(2), u(4), u(0xdeadbeef), p.wrapping_sub(U256::ONE)] {
            for exp in exps {
                assert_eq!(
                    base.pow_mod_windowed(exp, p),
                    base.pow_mod(exp, p),
                    "base={base} exp={exp}"
                );
            }
        }
        // Small-modulus corners.
        assert_eq!(u(3).pow_mod_windowed(u(4), U256::ONE), U256::ZERO, "mod 1 is zero");
        assert_eq!(u(2).pow_mod_windowed(u(10), u(1_000_000_007)), u(1024));
    }

    #[test]
    fn inverse_mod_prime() {
        let p = u(1_000_000_007);
        for a in [2u128, 3, 999, 123456789] {
            let inv = u(a).inv_mod_prime(p).unwrap();
            assert_eq!(u(a).mul_mod(inv, p), U256::ONE, "a={a}");
        }
        assert_eq!(U256::ZERO.inv_mod_prime(p), None);
        assert_eq!(p.inv_mod_prime(p), None, "p ≡ 0 mod p");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(u(5) < u(6));
        assert!(U256::from_limbs([0, 1, 0, 0]) > U256::from_limbs([u64::MAX, 0, 0, 0]));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        assert!(format!("{}", u(255)).ends_with("ff"));
        assert!(format!("{:?}", u(255)).starts_with("U256(0x"));
    }
}
