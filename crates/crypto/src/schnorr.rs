//! Schnorr signatures over the crate's discrete-log [`group`](crate::group).
//!
//! The signature scheme under every authenticated message in the workspace:
//! pseudonym certificates, beacon signing, task receipts. Deterministic
//! nonces (RFC 6979 in spirit: `k = H(sk || msg)`) keep runs reproducible
//! and remove nonce-reuse foot-guns.

use crate::group::{Element, Scalar};
use crate::sha256::sha256_parts;

/// A signing (secret) key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SigningKey {
    secret: Scalar,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        f.write_str("SigningKey(..)")
    }
}

/// A verification (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    point: Element,
}

/// A Schnorr signature `(R, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Commitment `R = g^k`.
    pub commitment: Element,
    /// Response `s = k + x·e (mod q)`.
    pub response: Scalar,
}

/// Serialized signature length in bytes.
pub const SIGNATURE_LEN: usize = 64;

impl SigningKey {
    /// Derives a signing key from 32 bytes of seed material.
    ///
    /// The seed is hashed to a scalar; a zero result (probability ~2^-256)
    /// is bumped to one so the key is always valid.
    pub fn from_seed(seed: &[u8]) -> SigningKey {
        let mut secret = Scalar::hash_to_scalar(&[b"vc-schnorr-key", seed]);
        if secret.is_zero() {
            secret = Scalar::one();
        }
        SigningKey { secret }
    }

    /// The matching verification key `y = g^x`.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { point: Element::base_pow(self.secret) }
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        // Deterministic nonce bound to the secret and the message.
        let mut k =
            Scalar::hash_to_scalar(&[b"vc-schnorr-nonce", &self.secret.to_bytes(), message]);
        if k.is_zero() {
            k = Scalar::one();
        }
        let commitment = Element::base_pow(k);
        let challenge = challenge_scalar(&commitment, &self.verifying_key(), message);
        let response = k.add(self.secret.mul(challenge));
        Signature { commitment, response }
    }

    /// Raw scalar access for protocol constructions (e.g. blinded keys).
    pub fn secret_scalar(&self) -> Scalar {
        self.secret
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let challenge = challenge_scalar(&signature.commitment, self, message);
        // g^s == R * y^e
        let lhs = Element::base_pow(signature.response);
        let rhs = signature.commitment.mul(self.point.pow(challenge));
        lhs == rhs
    }

    /// Verifies `signature` over `message` using only the square-and-multiply
    /// reference paths ([`Element::base_pow_scalar`] and plain `pow_mod`) —
    /// the exact work a verifier did before the fixed-base table and windowed
    /// exponentiation landed. This is the "before" cost basis experiment E20
    /// measures batch verification against, and what [`verify`](Self::verify)
    /// degrades to under `VC_CRYPTO_SCALAR=1`. Identical accept/reject
    /// decisions to `verify` on every input.
    pub fn verify_scalar(&self, message: &[u8], signature: &Signature) -> bool {
        let params = crate::group::group();
        let challenge = challenge_scalar(&signature.commitment, self, message);
        let lhs = Element::base_pow_scalar(signature.response);
        let y_to_e = self.point.as_u256().pow_mod(challenge.as_u256(), params.p);
        let rhs = signature.commitment.as_u256().mul_mod(y_to_e, params.p);
        lhs.as_u256() == rhs
    }

    /// The public group element.
    pub fn element(&self) -> Element {
        self.point
    }

    /// 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.point.to_bytes()
    }

    /// Decodes and validates a key (must be a genuine subgroup member).
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<VerifyingKey> {
        Element::from_bytes(bytes).map(|point| VerifyingKey { point })
    }

    /// Creates from an existing element (e.g. a blinded public key).
    pub fn from_element(point: Element) -> VerifyingKey {
        VerifyingKey { point }
    }
}

impl Signature {
    /// Serializes to 64 bytes (`R || s`).
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.commitment.to_bytes());
        out[32..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Deserializes from 64 bytes; `None` when the commitment is not a valid
    /// group element.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Option<Signature> {
        let mut r = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        let mut s = [0u8; 32];
        s.copy_from_slice(&bytes[32..]);
        let commitment = Element::from_bytes(&r)?;
        Some(Signature { commitment, response: Scalar::from_bytes(&s) })
    }
}

/// Batch verification of many (message, key, signature) triples — the
/// technique the paper's time-critical authentication citations rely on
/// ([21] batch verification, [44] real-time signatures).
///
/// Uses small random weights `r_i` and one simultaneous multi-exponentiation:
///
/// ```text
/// g^(Σ r_i·s_i)  ==  Π R_i^{r_i} · Π y_i^{r_i·e_i}
/// ```
///
/// Sound except with probability ~2^-128 over the weights (derived by
/// hashing the whole batch with `weight_seed`, so a forger cannot pick
/// signatures after seeing them). An empty batch verifies trivially.
///
/// Note: a failed batch says *some* signature is bad but not which; callers
/// needing attribution use [`verify_batch`], which falls back to
/// per-signature verification to pinpoint culprits.
pub fn batch_verify(items: &[(&[u8], VerifyingKey, Signature)], weight_seed: &[u8]) -> bool {
    if items.is_empty() {
        return true;
    }
    // Transcript hash binding all items, so weights depend on everything.
    let mut transcript = Sha256Transcript::new(weight_seed);
    for (msg, key, sig) in items {
        transcript.absorb(msg);
        transcript.absorb(&key.to_bytes());
        transcript.absorb(&sig.to_bytes());
    }
    let mut s_combined = Scalar::zero();
    let mut bases = Vec::with_capacity(items.len() * 2);
    let mut exps = Vec::with_capacity(items.len() * 2);
    for (i, (msg, key, sig)) in items.iter().enumerate() {
        let weight = transcript.weight(i as u64);
        let challenge = challenge_scalar(&sig.commitment, key, msg);
        s_combined = s_combined.add(weight.mul(sig.response));
        bases.push(sig.commitment);
        exps.push(weight);
        bases.push(key.element());
        exps.push(weight.mul(challenge));
    }
    let lhs = Element::base_pow(s_combined);
    let rhs = crate::group::multi_exp(&bases, &exps);
    lhs == rhs
}

/// Batch verification with culprit attribution: semantically equivalent to
/// verifying every triple individually, but a batch of valid signatures
/// costs one random-linear-combination check ([`batch_verify`]).
///
/// On success returns `Ok(())`. When the combined check fails, falls back
/// to per-signature [`VerifyingKey::verify`] and returns the indices that
/// fail individually — per-signature verification is the ground truth, so
/// the result is exactly the set a sequential verifier would reject. (A
/// batch of individually-valid signatures satisfies the combined equation
/// *identically*, so the fallback never runs on an all-valid batch; the
/// 2^-128 soundness gap runs the other way — see docs/CRYPTO.md.)
///
/// Weights are derived by pure hashing of the batch transcript and
/// `weight_seed` — never an RNG draw — so results are deterministic and
/// shard-count-invariant.
///
/// # Errors
///
/// `Err(indices)` of the individually-failing items, in ascending order.
pub fn verify_batch(
    items: &[(&[u8], VerifyingKey, Signature)],
    weight_seed: &[u8],
) -> Result<(), Vec<usize>> {
    if batch_verify(items, weight_seed) {
        return Ok(());
    }
    Err(items
        .iter()
        .enumerate()
        .filter(|(_, (msg, key, sig))| !key.verify(msg, sig))
        .map(|(i, _)| i)
        .collect())
}

/// Minimal transcript helper for deriving batch weights.
struct Sha256Transcript {
    state: [u8; 32],
}

impl Sha256Transcript {
    fn new(seed: &[u8]) -> Self {
        Sha256Transcript { state: sha256_parts(&[b"vc-batch-transcript", seed]) }
    }

    fn absorb(&mut self, data: &[u8]) {
        self.state = sha256_parts(&[&self.state, data]);
    }

    /// The i-th batch weight: the low 128 bits of a transcript-bound hash
    /// (zero bumped to one). Half-width weights halve the multiply count
    /// the commitment terms contribute to the shared multi-exponentiation
    /// while keeping the forgery probability at the same 2^-128 bound the
    /// full-width weights gave (the bound is `1/#weights`, not `1/q`).
    fn weight(&self, index: u64) -> Scalar {
        let digest = sha256_parts(&[b"vc-batch-weight", &self.state, &index.to_be_bytes()]);
        let mut low = [0u8; 16];
        low.copy_from_slice(&digest[16..]);
        let mut w = Scalar::from_u256(crate::u256::U256::from(u128::from_be_bytes(low)));
        if w.is_zero() {
            w = Scalar::one();
        }
        w
    }
}

fn challenge_scalar(commitment: &Element, key: &VerifyingKey, message: &[u8]) -> Scalar {
    let digest =
        sha256_parts(&[b"vc-schnorr-challenge", &commitment.to_bytes(), &key.to_bytes(), message]);
    Scalar::hash_to_scalar(&[&digest])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_seed(b"vehicle 42 registration seed");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"beacon: pos=(12.0, 8.5) v=13.2");
        assert!(vk.verify(b"beacon: pos=(12.0, 8.5) v=13.2", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = SigningKey::from_seed(b"seed-a");
        let sig = sk.sign(b"original");
        assert!(!sk.verifying_key().verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(b"seed-1");
        let sk2 = SigningKey::from_seed(b"seed-2");
        let sig = sk1.sign(b"m");
        assert!(!sk2.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_seed(b"seed");
        let sig = sk.sign(b"m");
        let bumped =
            Signature { commitment: sig.commitment, response: sig.response.add(Scalar::one()) };
        assert!(!sk.verifying_key().verify(b"m", &bumped));
        let wrong_commit = Signature {
            commitment: sig.commitment.mul(Element::generator()),
            response: sig.response,
        };
        assert!(!sk.verifying_key().verify(b"m", &wrong_commit));
    }

    #[test]
    fn deterministic_signatures() {
        let sk = SigningKey::from_seed(b"det");
        assert_eq!(sk.sign(b"m").to_bytes(), sk.sign(b"m").to_bytes());
        assert_ne!(sk.sign(b"m1").to_bytes(), sk.sign(b"m2").to_bytes());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sk = SigningKey::from_seed(b"bytes");
        let sig = sk.sign(b"msg");
        let restored = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(restored, sig);
        assert!(sk.verifying_key().verify(b"msg", &restored));
        // Corrupt the commitment half so it's no longer a subgroup member.
        let mut bad = sig.to_bytes();
        bad[..32].copy_from_slice(&[0u8; 32]);
        assert_eq!(Signature::from_bytes(&bad), None);
    }

    #[test]
    fn verifying_key_bytes_roundtrip() {
        let vk = SigningKey::from_seed(b"vk").verifying_key();
        assert_eq!(VerifyingKey::from_bytes(&vk.to_bytes()), Some(vk));
        assert_eq!(VerifyingKey::from_bytes(&[0u8; 32]), None);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = SigningKey::from_seed(b"a").verifying_key();
        let b = SigningKey::from_seed(b"b").verifying_key();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_hides_secret() {
        let sk = SigningKey::from_seed(b"hidden");
        assert_eq!(format!("{sk:?}"), "SigningKey(..)");
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let items: Vec<(Vec<u8>, VerifyingKey, Signature)> = (0..8u8)
            .map(|i| {
                let sk = SigningKey::from_seed(&[i; 4]);
                let msg = vec![i; 20];
                let sig = sk.sign(&msg);
                (msg, sk.verifying_key(), sig)
            })
            .collect();
        let refs: Vec<(&[u8], VerifyingKey, Signature)> =
            items.iter().map(|(m, k, s)| (m.as_slice(), *k, *s)).collect();
        assert!(batch_verify(&refs, b"seed"));
        assert!(batch_verify(&[], b"seed"), "empty batch verifies");
    }

    #[test]
    fn batch_verify_rejects_one_bad_signature() {
        let mut items: Vec<(Vec<u8>, VerifyingKey, Signature)> = (0..6u8)
            .map(|i| {
                let sk = SigningKey::from_seed(&[i; 4]);
                let msg = vec![i; 20];
                let sig = sk.sign(&msg);
                (msg, sk.verifying_key(), sig)
            })
            .collect();
        // Corrupt one message after signing.
        items[3].0[0] ^= 1;
        let refs: Vec<(&[u8], VerifyingKey, Signature)> =
            items.iter().map(|(m, k, s)| (m.as_slice(), *k, *s)).collect();
        assert!(!batch_verify(&refs, b"seed"));
    }

    #[test]
    fn batch_verify_rejects_swapped_signatures() {
        // Two individually valid signatures attached to each other's message.
        let sk1 = SigningKey::from_seed(b"one");
        let sk2 = SigningKey::from_seed(b"two");
        let s1 = sk1.sign(b"msg-1");
        let s2 = sk2.sign(b"msg-2");
        let swapped: Vec<(&[u8], VerifyingKey, Signature)> =
            vec![(b"msg-1", sk1.verifying_key(), s2), (b"msg-2", sk2.verifying_key(), s1)];
        assert!(!batch_verify(&swapped, b"seed"));
    }

    #[test]
    fn batch_verify_single_item_agrees_with_verify() {
        let sk = SigningKey::from_seed(b"solo");
        let sig = sk.sign(b"m");
        assert!(batch_verify(&[(b"m", sk.verifying_key(), sig)], b"x"));
        let bad =
            Signature { commitment: sig.commitment, response: sig.response.add(Scalar::one()) };
        assert!(!batch_verify(&[(b"m", sk.verifying_key(), bad)], b"x"));
    }

    #[test]
    fn verify_batch_attributes_single_culprit() {
        let mut items: Vec<(Vec<u8>, VerifyingKey, Signature)> = (0..8u8)
            .map(|i| {
                let sk = SigningKey::from_seed(&[i; 4]);
                let msg = vec![i; 20];
                let sig = sk.sign(&msg);
                (msg, sk.verifying_key(), sig)
            })
            .collect();
        fn refs(
            items: &[(Vec<u8>, VerifyingKey, Signature)],
        ) -> Vec<(&[u8], VerifyingKey, Signature)> {
            items.iter().map(|(m, k, s)| (m.as_slice(), *k, *s)).collect()
        }
        assert_eq!(verify_batch(&refs(&items), b"seed"), Ok(()));
        assert_eq!(verify_batch(&[], b"seed"), Ok(()), "empty batch verifies");
        // Exactly one forged signature must fail the batch AND be attributed.
        items[5].0[0] ^= 1;
        assert_eq!(verify_batch(&refs(&items), b"seed"), Err(vec![5]));
        // A second culprit joins the list, ascending order.
        items[2].2.response = items[2].2.response.add(Scalar::one());
        assert_eq!(verify_batch(&refs(&items), b"seed"), Err(vec![2, 5]));
    }

    #[test]
    fn verify_scalar_agrees_with_verify() {
        let sk = SigningKey::from_seed(b"scalar-ref");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"beacon");
        assert!(vk.verify_scalar(b"beacon", &sig));
        assert!(!vk.verify_scalar(b"tampered", &sig));
        let bumped =
            Signature { commitment: sig.commitment, response: sig.response.add(Scalar::one()) };
        assert!(!vk.verify_scalar(b"beacon", &bumped));
    }

    #[test]
    fn empty_message_signs() {
        let sk = SigningKey::from_seed(b"empty");
        let sig = sk.sign(b"");
        assert!(sk.verifying_key().verify(b"", &sig));
        assert!(!sk.verifying_key().verify(b"x", &sig));
    }
}
