//! # vc-crypto — from-scratch cryptographic substrate
//!
//! All the cryptography the vehicular-cloud protocols build on, implemented
//! from first principles in this workspace (DESIGN.md rationale: realistic
//! protocol *costs and structure*, not production hardening):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (verified against standard vectors)
//! * [`hmac`] — HMAC-SHA-256 and HKDF (RFC 2104 / 5869)
//! * [`u256`] — 256-bit integer with modular arithmetic
//! * [`group`] — a fixed 256-bit safe-prime discrete-log group
//! * [`schnorr`] — Schnorr signatures with deterministic nonces
//! * [`dh`] — Diffie–Hellman key agreement with HKDF session keys
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439) plus an
//!   encrypt-then-MAC `seal`/`open` pair
//! * [`merkle`] — domain-separated Merkle trees for chunked file integrity
//!
//! **Security note:** the discrete-log group is a 256-bit safe prime — far
//! below production strength for finite-field DLP — chosen so experiments
//! have real (not mocked) asymmetric-crypto cost structure at tractable
//! speed. A deployment would swap in an elliptic-curve group.
//!
//! The exponentiation fast paths (fixed-base window table, k-ary
//! `pow_mod_windowed`, batch Schnorr verification) are result-identical to
//! the retained square-and-multiply references; `VC_CRYPTO_SCALAR=1` forces
//! the reference paths process-wide (see docs/CRYPTO.md).
//!
//! ## Example
//!
//! ```
//! use vc_crypto::schnorr::SigningKey;
//! let key = SigningKey::from_seed(b"vehicle-42");
//! let sig = key.sign(b"hello v-cloud");
//! assert!(key.verifying_key().verify(b"hello v-cloud", &sig));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chacha20;
pub mod dh;
pub mod group;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod schnorr;
pub mod sha256;
pub mod u256;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::chacha20::{open, seal};
    pub use crate::dh::{EphemeralSecret, PublicShare, SessionKey};
    pub use crate::group::{multi_exp, Element, Scalar};
    pub use crate::hmac::{hkdf, hmac_sha256};
    pub use crate::merkle::{MerkleProof, MerkleTree};
    pub use crate::schnorr::{batch_verify, verify_batch, Signature, SigningKey, VerifyingKey};
    pub use crate::sha256::{sha256, Digest};
    pub use crate::u256::U256;
}
